#pragma once
// Incremental analysis engine shared by every synthesis transform.
//
// Each pass used to recompute its static analysis from scratch on every
// invocation: reference counts, fanout adjacency, k-feasible cut sets, and —
// the actual hot part — per-node *pure* resynthesis analysis (reconvergence
// windows, window truth tables, resubstitution match scans, ISOP+factoring).
// Profiling shows the per-node pure work dominates restructure and refactor
// (>85% of a pass), so an AnalysisCache memoises it per graph:
//
//  * whole-graph artifacts: pristine RefCounts, CSR fanout adjacency and
//    CutManager instances, computed lazily and shared read-only,
//  * per-node plans: reconvergence windows (leaves), resub plans (every
//    functionally matching 0-/1-resub candidate, in scan order) and factor
//    plans (the winning factored form of the window function). Plans are
//    pure functions of the graph, so cold and warm passes that replay them
//    against their own evolving pass state make bit-identical decisions.
//
// Damage regions: a pass reports its edit through the RebuildInfo produced
// by opt::apply_replacements, and `derive` carries every plan whose
// dependency cone is untouched over to the output graph's cache — per-pass
// analysis cost then scales with the size of the edit, not with |AIG|.
// Carried artifacts are bitwise equal to what a fresh computation on the new
// graph would produce (pinned by tests); anything that cannot be proven
// clean is simply dropped and recomputed lazily.
//
// Thread-safety: one AnalysisCache may be shared by concurrent evaluations
// resuming from the same cached snapshot (trie branch points). Whole-graph
// slots fill under a mutex; per-node plan slots publish through per-slot
// atomic states (acquire/release), so readers never block writers of other
// nodes. Mutable pass state (evolving reference counts) is copy-on-write:
// passes copy the pristine RefCounts and mutate their own copy.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "aig/aig.hpp"
#include "aig/cuts.hpp"
#include "aig/factor.hpp"
#include "aig/refs.hpp"

namespace flowgen::aig {

/// Damage report of a replacement-style pass: how the rebuilt graph relates
/// to the pass's input. Produced by opt::apply_replacements, consumed by
/// AnalysisCache::derive.
struct RebuildInfo {
  /// Per input-graph node: the literal it became in the output graph, or
  /// kLitInvalid when it was dropped (unreachable after replacements).
  std::vector<Lit> old_to_new;
  /// Per input-graph node: true when the node was emitted by the identity
  /// sweep — it was not replaced, its whole transitive fanin is unreplaced,
  /// and it kept its structure. Sweep nodes are emitted in ascending input
  /// id order, so the old->new map restricted to them (plus PIs and the
  /// constant, which keep their positions) is strictly order-preserving —
  /// the property that lets sorted leaf lists be carried without re-sorting.
  std::vector<char> identity;
};

/// Flattened fanout adjacency (CSR). Immutable once built; fanouts of node
/// `id` are targets[offsets[id] .. offsets[id+1]), ascending by fanout id.
struct FanoutView {
  const std::uint32_t* offsets = nullptr;
  const std::uint32_t* targets = nullptr;

  std::uint32_t begin(std::uint32_t id) const { return offsets[id]; }
  std::uint32_t end(std::uint32_t id) const { return offsets[id + 1]; }
  std::uint32_t target(std::uint32_t i) const { return targets[i]; }
};

/// A reconvergence-driven window root'ed at one node: the sorted cut leaves
/// (reconv_cut) every window-based pass agrees on. `skip` marks roots whose
/// cut degenerated (fewer than 2 or more than 16 leaves).
struct ReconvWindow {
  bool skip = false;
  std::vector<std::uint32_t> leaves;
};

/// One functional 1-resub candidate: target == (div0 ^ c0) & (div1 ^ c1),
/// possibly complemented at the output. Stored in scan order (divisor pair
/// order, then phase order) so replay visits candidates exactly as a fresh
/// scan would.
struct ResubMatch {
  std::uint32_t div0 = 0;
  std::uint32_t div1 = 0;
  std::uint8_t compl0 = 0;
  std::uint8_t compl1 = 0;
  std::uint8_t out_compl = 0;
};

/// A 0-resub candidate: an existing divisor computing the target function
/// (possibly complemented).
struct ZeroMatch {
  std::uint32_t div = 0;
  std::uint8_t compl_ = 0;
};

/// The pure half of restructure's work for one root: every functionally
/// matching resubstitution candidate over the pristine-graph window, plus
/// the window closure (every node whose pristine state the plan depends on)
/// for damage checks. The evolving half — MFFC gain, alias resolution,
/// incremental cost, commit — is replayed by the pass against its own state.
struct ResubPlan {
  bool skip = false;  ///< degenerate window or target unavailable
  std::vector<ZeroMatch> zeros;
  std::vector<ResubMatch> ones;
  /// Window members in BFS insertion order (leaves first). The plan is
  /// carried across a rebuild only when every member survives untouched
  /// (structure, pristine refs and fanout lists).
  std::vector<std::uint32_t> closure;
};

/// The winning factored form of one window function: ISOP + quick-factor of
/// both polarities, fewer literals wins (ties prefer positive). Shared by
/// value between nodes, graphs and designs via the process-wide memo — the
/// same truth table always factors the same way.
struct FactoredForm {
  FactorExpr expr;
  bool output_compl = false;  ///< build the complement polarity, invert root
  std::size_t literals = 0;
  std::size_t bytes = 0;  ///< approximate heap footprint of `expr`
};

/// Factored form of `tt`, served from (and inserted into) the process-wide
/// truth-table memo. Pure and thread-safe; bounded (insertions stop at a
/// high-water mark, which never affects values — only recomputation).
std::shared_ptr<const FactoredForm> factored_form(const TruthTable& tt);

/// Build a FactoredForm over `inputs` (inputs[i] drives variable i).
Lit build_factored_form(Aig& aig, const FactoredForm& form,
                        const std::vector<Lit>& inputs);

/// The pure half of refactor's work for one root: window skip/degeneracy
/// plus the factored form of the window function.
struct FactorPlan {
  bool skip = false;  ///< degenerate window (size, or root among leaves)
  std::shared_ptr<const FactoredForm> form;
};

/// Monotonic process-wide counters for benchmarking the engine. Reads are
/// racy-but-monotonic; reset() is for bench harnesses only.
struct AnalysisCounters {
  std::size_t windows_computed = 0;
  std::size_t resub_plans_computed = 0;
  std::size_t resub_plans_carried = 0;
  std::size_t factor_plans_computed = 0;
  std::size_t factor_plans_carried = 0;
  std::size_t factor_memo_hits = 0;
  std::size_t cut_nodes_computed = 0;
  std::size_t cut_nodes_carried = 0;
  std::size_t windows_carried = 0;
};
AnalysisCounters analysis_counters();
void reset_analysis_counters();

/// Per-graph analysis store. An AnalysisCache is created against one
/// immutable graph; every accessor takes the graph again (the cache never
/// owns it) and the caller guarantees it is the same graph — snapshots in
/// the flow cache pair the two in one entry. All accessors are thread-safe.
class AnalysisCache {
public:
  /// Bind to `g` (records the node count; no analysis is computed yet).
  explicit AnalysisCache(const Aig& g);
  ~AnalysisCache();

  std::size_t num_nodes() const { return num_nodes_; }

  // -- whole-graph artifacts ------------------------------------------------

  /// Reference counts of the pristine graph (what RefCounts(g) computes).
  /// Passes copy this and evolve the copy.
  const RefCounts& pristine_refs(const Aig& g) const;

  /// CSR fanout adjacency of the pristine graph.
  FanoutView fanouts(const Aig& g) const;

  /// Cut sets for `params`, computed once per distinct parameter set and
  /// shared read-only (rewrite never mutates cut sets mid-pass).
  std::shared_ptr<const CutManager> cuts(const Aig& g,
                                         const CutParams& params) const;

  // -- per-node plans -------------------------------------------------------

  /// Reconvergence window of `root` for `max_leaves` (shared by restructure
  /// and refactor when their leaf limits agree).
  const ReconvWindow& window(const Aig& g, std::uint32_t root,
                             unsigned max_leaves) const;

  /// Restructure's pure resub plan for `root`. `scratch_refs` must be a
  /// caller-owned copy of pristine_refs (it is mutated and restored); one
  /// copy per pass avoids contention.
  const ResubPlan& resub_plan(const Aig& g, std::uint32_t root,
                              unsigned max_leaves, unsigned max_divisors,
                              RefCounts& scratch_refs) const;

  /// Refactor's pure factor plan for `root`.
  const FactorPlan& factor_plan(const Aig& g, std::uint32_t root,
                                unsigned max_leaves) const;

  /// Plan already materialised? (test/bench introspection; nullptr when the
  /// slot is still empty).
  const ResubPlan* resub_plan_if_ready(std::uint32_t root,
                                       unsigned max_leaves,
                                       unsigned max_divisors) const;
  const FactorPlan* factor_plan_if_ready(std::uint32_t root,
                                         unsigned max_leaves) const;
  const ReconvWindow* window_if_ready(std::uint32_t root,
                                      unsigned max_leaves) const;

  // -- damage-region carry --------------------------------------------------

  /// Analysis for `new_g` (the output of a pass over `old_g` with damage
  /// `rebuild`), carrying every plan of `old_cache` whose dependency cone
  /// is provably untouched. Everything carried is bitwise identical to a
  /// fresh computation on `new_g`; everything else starts empty. Never
  /// fails — worst case the result is an empty cache.
  static std::shared_ptr<AnalysisCache> derive(const Aig& old_g,
                                               const AnalysisCache& old_cache,
                                               const RebuildInfo& rebuild,
                                               const Aig& new_g);

  /// Approximate heap footprint of every materialised artifact. Grows as
  /// slots fill; byte-budgeted holders (the flow cache) re-poll on touch.
  std::size_t memory_bytes() const;

private:
  struct WindowTable;
  struct ResubTable;
  struct FactorTable;
  struct CutSlot;

  WindowTable& window_table(unsigned max_leaves) const;
  ResubTable& resub_table(unsigned max_leaves, unsigned max_divisors) const;
  FactorTable& factor_table(unsigned max_leaves) const;

  std::size_t num_nodes_ = 0;

  mutable std::mutex mutex_;  ///< guards slot/table creation + fills
  mutable std::shared_ptr<const RefCounts> refs_;
  mutable std::shared_ptr<const std::vector<std::uint32_t>> fanout_offsets_;
  mutable std::shared_ptr<const std::vector<std::uint32_t>> fanout_targets_;
  mutable std::vector<std::unique_ptr<CutSlot>> cut_slots_;
  mutable std::vector<std::unique_ptr<WindowTable>> window_tables_;
  mutable std::vector<std::unique_ptr<ResubTable>> resub_tables_;
  mutable std::vector<std::unique_ptr<FactorTable>> factor_tables_;
};

}  // namespace flowgen::aig
