#include "aig/npn.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace flowgen::aig {

NpnResult npn_canonicalize(const TruthTable& tt) {
  const unsigned n = tt.num_vars();
  assert(n <= 5 && "exhaustive NPN is exponential; capped at 5 vars");

  std::vector<unsigned> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);

  NpnResult best;
  best.canonical = tt;
  best.transform.perm = perm;
  bool first = true;

  std::vector<unsigned> p = perm;
  do {
    for (unsigned flip = 0; flip < (1u << n); ++flip) {
      for (int out = 0; out < 2; ++out) {
        TruthTable cand = tt.permute_flip(p, flip, out != 0);
        if (first || cand < best.canonical) {
          first = false;
          best.canonical = std::move(cand);
          best.transform.perm = p;
          best.transform.flip_mask = flip;
          best.transform.out_flip = (out != 0);
        }
      }
    }
  } while (std::next_permutation(p.begin(), p.end()));
  return best;
}

std::size_t known_npn_class_count(unsigned num_vars) {
  switch (num_vars) {
    case 0: return 1;
    case 1: return 2;
    case 2: return 4;
    case 3: return 14;
    case 4: return 222;
    default: return 0;  // unknown to this table
  }
}

}  // namespace flowgen::aig
