#include "aig/simulate.hpp"

#include <cassert>
#include <stdexcept>
#include <unordered_map>

namespace flowgen::aig {

Simulator::Simulator(const Aig& aig, util::Rng& rng, std::size_t words)
    : words_(words), data_(aig.num_nodes() * words, 0) {
  for (std::uint32_t pi : aig.pis()) {
    for (std::size_t w = 0; w < words_; ++w) data_[pi * words_ + w] = rng();
  }
  for (std::uint32_t id = 0; id < aig.num_nodes(); ++id) {
    if (!aig.is_and(id)) continue;
    const auto& n = aig.node(id);
    const std::uint32_t a = lit_node(n.fanin0);
    const std::uint32_t b = lit_node(n.fanin1);
    const std::uint64_t ma = lit_is_compl(n.fanin0) ? ~0ull : 0ull;
    const std::uint64_t mb = lit_is_compl(n.fanin1) ? ~0ull : 0ull;
    for (std::size_t w = 0; w < words_; ++w) {
      data_[id * words_ + w] =
          (data_[a * words_ + w] ^ ma) & (data_[b * words_ + w] ^ mb);
    }
  }
}

std::vector<std::uint64_t> Simulator::signature(Lit l) const {
  std::vector<std::uint64_t> sig(words_);
  const std::uint32_t id = lit_node(l);
  const std::uint64_t mask = lit_is_compl(l) ? ~0ull : 0ull;
  for (std::size_t w = 0; w < words_; ++w) {
    sig[w] = data_[id * words_ + w] ^ mask;
  }
  return sig;
}

bool random_equivalent(const Aig& a, const Aig& b, util::Rng& rng,
                       std::size_t words) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) return false;
  // Both graphs must see the same PI patterns: fork the RNG once and replay.
  const util::Rng saved = rng;
  util::Rng rng_a = saved;
  util::Rng rng_b = saved;
  Simulator sim_a(a, rng_a, words);
  Simulator sim_b(b, rng_b, words);
  for (std::size_t i = 0; i < a.num_pos(); ++i) {
    if (sim_a.signature(a.po(i)) != sim_b.signature(b.po(i))) return false;
  }
  rng = rng_a;  // advance the caller's stream
  return true;
}

TruthTable cone_truth(const Aig& aig, Lit root,
                      const std::vector<std::uint32_t>& leaves) {
  const auto nv = static_cast<unsigned>(leaves.size());
  if (nv > 16) throw std::invalid_argument("cone_truth: cut too large");

  std::unordered_map<std::uint32_t, TruthTable> tt;
  tt.reserve(leaves.size() * 4);
  for (unsigned i = 0; i < nv; ++i) {
    tt.emplace(leaves[i], TruthTable::variable(nv, i));
  }
  tt.emplace(0u, TruthTable::constant(nv, false));

  // Recursive evaluation with an explicit stack (cones can be deep).
  std::vector<std::uint32_t> stack{lit_node(root)};
  while (!stack.empty()) {
    const std::uint32_t id = stack.back();
    if (tt.count(id)) {
      stack.pop_back();
      continue;
    }
    if (!aig.is_and(id)) {
      throw std::invalid_argument("cone_truth: leaves do not form a cut");
    }
    const auto& n = aig.node(id);
    const std::uint32_t a = lit_node(n.fanin0);
    const std::uint32_t b = lit_node(n.fanin1);
    const bool have_a = tt.count(a) > 0;
    const bool have_b = tt.count(b) > 0;
    if (have_a && have_b) {
      tt.emplace(id, TruthTable::and_phase(tt.at(a), lit_is_compl(n.fanin0),
                                           tt.at(b), lit_is_compl(n.fanin1)));
      stack.pop_back();
    } else {
      if (!have_a) stack.push_back(a);
      if (!have_b) stack.push_back(b);
    }
  }
  TruthTable result = tt.at(lit_node(root));
  if (lit_is_compl(root)) result = ~result;
  return result;
}

}  // namespace flowgen::aig
