#pragma once
// NPN canonicalisation (input Negation, input Permutation, output Negation)
// for functions of up to 5 variables, by exhaustive search over the
// transform group. Used to index the standard-cell library and to cache
// rewrite results per function class.

#include <cstdint>
#include <vector>

#include "aig/truth.hpp"

namespace flowgen::aig {

struct NpnTransform {
  std::vector<unsigned> perm;  ///< canonical input i reads original perm[i]
  unsigned flip_mask = 0;      ///< inputs complemented before permutation
  bool out_flip = false;       ///< output complemented
};

struct NpnResult {
  TruthTable canonical;
  NpnTransform transform;  ///< canonical = original.permute_flip(transform)
};

/// Exhaustive NPN canonical form: the lexicographically smallest truth table
/// over all 2 * 2^n * n! transforms. Exact for n <= 5 (cost <= 2*32*120).
NpnResult npn_canonicalize(const TruthTable& tt);

/// Number of distinct NPN classes for n variables (known values up to 4:
/// 1 var -> 2, 2 -> 4, 3 -> 14, 4 -> 222), used by tests as ground truth.
std::size_t known_npn_class_count(unsigned num_vars);

}  // namespace flowgen::aig
