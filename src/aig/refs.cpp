#include "aig/refs.hpp"

#include <cassert>

namespace flowgen::aig {

RefCounts::RefCounts(const Aig& aig)
    : refs_(aig.num_nodes(), 0), terminal_(aig.num_nodes(), 0) {
  // Count only references from PO-reachable logic: a dead node's fanin
  // edges must not pin down live nodes, or MFFC sizes would be
  // underestimated and dead cones would never be reclaimed as gain.
  std::vector<char> live(aig.num_nodes(), 0);
  std::vector<std::uint32_t> stack;
  for (Lit po : aig.pos()) stack.push_back(lit_node(po));
  while (!stack.empty()) {
    const std::uint32_t id = stack.back();
    stack.pop_back();
    if (live[id]) continue;
    live[id] = 1;
    if (!aig.is_and(id)) continue;
    stack.push_back(lit_node(aig.node(id).fanin0));
    stack.push_back(lit_node(aig.node(id).fanin1));
  }
  for (std::uint32_t id = 0; id < aig.num_nodes(); ++id) {
    if (!live[id] || !aig.is_and(id)) continue;
    ++refs_[lit_node(aig.node(id).fanin0)];
    ++refs_[lit_node(aig.node(id).fanin1)];
  }
  for (Lit po : aig.pos()) ++refs_[lit_node(po)];
}

RefCounts RefCounts::pristine(const Aig& aig) {
  RefCounts rc;
  rc.refs_.assign(aig.num_nodes(), 0);
  rc.terminal_.assign(aig.num_nodes(), 0);
  for (std::uint32_t id = 0; id < aig.num_nodes(); ++id) {
    if (!aig.is_and(id)) continue;
    ++rc.refs_[lit_node(aig.node(id).fanin0)];
    ++rc.refs_[lit_node(aig.node(id).fanin1)];
  }
  for (Lit po : aig.pos()) ++rc.refs_[lit_node(po)];
  // Premise check: with every AND referenced, references can only chain
  // upward (ids increase) until they hit a PO, so every AND is live and the
  // all-nodes count equals the live-only count.
  for (std::uint32_t id = 0; id < aig.num_nodes(); ++id) {
    if (aig.is_and(id) && rc.refs_[id] == 0) return RefCounts(aig);
  }
  return rc;
}

void RefCounts::grow(const Aig& aig) {
  if (refs_.size() < aig.num_nodes()) {
    refs_.resize(aig.num_nodes(), 0);
    terminal_.resize(aig.num_nodes(), 0);
  }
}

std::uint32_t RefCounts::deref_mffc(const Aig& aig, std::uint32_t node,
                                    std::vector<std::uint32_t>* dying) {
  if (!walkable(aig, node)) return 0;
  if (dying) dying->push_back(node);
  std::uint32_t count = 1;
  for (Lit fanin : {aig.node(node).fanin0, aig.node(node).fanin1}) {
    const std::uint32_t f = lit_node(fanin);
    assert(refs_[f] > 0);
    if (--refs_[f] == 0) count += deref_mffc(aig, f, dying);
  }
  return count;
}

std::uint32_t RefCounts::ref_mffc(const Aig& aig, std::uint32_t node) {
  if (!walkable(aig, node)) return 0;
  std::uint32_t count = 1;
  for (Lit fanin : {aig.node(node).fanin0, aig.node(node).fanin1}) {
    const std::uint32_t f = lit_node(fanin);
    if (refs_[f]++ == 0) count += ref_mffc(aig, f);
  }
  return count;
}

void RefCounts::ref_cone(const Aig& aig, Lit l) {
  const std::uint32_t id = lit_node(l);
  if (refs_[id]++ == 0 && walkable(aig, id)) {
    ref_cone(aig, aig.node(id).fanin0);
    ref_cone(aig, aig.node(id).fanin1);
  }
}

std::uint32_t RefCounts::mffc_size(const Aig& aig, std::uint32_t node) {
  const std::uint32_t size = deref_mffc(aig, node);
  const std::uint32_t restored = ref_mffc(aig, node);
  assert(size == restored);
  (void)restored;
  return size;
}

std::vector<std::uint32_t> RefCounts::mffc_nodes(const Aig& aig,
                                                 std::uint32_t node) {
  std::vector<std::uint32_t> dying;
  deref_mffc(aig, node, &dying);
  ref_mffc(aig, node);
  return dying;
}

}  // namespace flowgen::aig
