#pragma once
// k-feasible priority-cut enumeration, the workhorse of both 4-cut rewriting
// and the technology mapper (same algorithm ABC uses: bottom-up merge of
// fanin cut sets, keeping a bounded number of cuts per node).

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"

namespace flowgen::aig {

/// One cut: sorted leaf node ids + 64-bit Bloom-style signature for fast
/// dominance checks.
struct Cut {
  std::vector<std::uint32_t> leaves;
  std::uint64_t signature = 0;

  static std::uint64_t leaf_bit(std::uint32_t id) {
    return std::uint64_t{1} << (id & 63u);
  }
  void compute_signature();
  /// True if this cut's leaves are a subset of `other`'s (dominance).
  bool subset_of(const Cut& other) const;
};

struct CutParams {
  unsigned cut_size = 4;    ///< max leaves (k)
  unsigned max_cuts = 8;    ///< priority cuts kept per node (excl. trivial)
  bool keep_trivial = true; ///< always include the {node} cut
};

/// Cut sets for every node of the graph, indexed by node id.
class CutManager {
public:
  CutManager(const Aig& aig, const CutParams& params);

  const std::vector<Cut>& cuts(std::uint32_t node) const {
    return cuts_[node];
  }

  const CutParams& params() const { return params_; }

private:
  CutParams params_;
  std::vector<std::vector<Cut>> cuts_;
};

/// Merge two cuts if the union has at most k leaves; returns false otherwise.
bool merge_cuts(const Cut& a, const Cut& b, unsigned k, Cut& out);

}  // namespace flowgen::aig
