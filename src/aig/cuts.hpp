#pragma once
// k-feasible priority-cut enumeration, the workhorse of both 4-cut rewriting
// and the technology mapper (same algorithm ABC uses: bottom-up merge of
// fanin cut sets, keeping a bounded number of cuts per node).

#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig.hpp"

namespace flowgen::aig {

/// One cut: sorted leaf node ids + 64-bit Bloom-style signature for fast
/// dominance checks.
struct Cut {
  std::vector<std::uint32_t> leaves;
  std::uint64_t signature = 0;

  static std::uint64_t leaf_bit(std::uint32_t id) {
    return std::uint64_t{1} << (id & 63u);
  }
  void compute_signature();
  /// True if this cut's leaves are a subset of `other`'s (dominance).
  bool subset_of(const Cut& other) const;
};

struct CutParams {
  unsigned cut_size = 4;    ///< max leaves (k)
  unsigned max_cuts = 8;    ///< priority cuts kept per node (excl. trivial)
  bool keep_trivial = true; ///< always include the {node} cut
};

/// Node-granular reuse hints for the incremental CutManager constructor:
/// how the nodes of the graph being enumerated relate to a previous graph
/// whose cut sets are being carried across a rebuild.
struct CutReuse {
  /// Per new node: its counterpart in the previous graph, or kNone.
  std::span<const std::uint32_t> old_of;
  /// Per new node: true when its whole transitive fanin is structurally
  /// unchanged *and* the old->new id map restricted to that cone preserves
  /// order — the condition under which remapping the old cut set is bitwise
  /// identical to re-enumerating it.
  std::span<const char> tfi_clean;
  /// Per old node: the literal it became (kLitInvalid when dropped). Only
  /// consulted for nodes inside clean cones, where it is always a positive
  /// literal.
  std::span<const Lit> old_to_new;

  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;
};

/// Cut sets for every node of the graph, indexed by node id.
class CutManager {
public:
  CutManager(const Aig& aig, const CutParams& params);

  /// Incremental enumeration across a rebuild: nodes whose transitive fanin
  /// is untouched copy their cut set from `prev` (leaf ids remapped,
  /// signatures recomputed); only the damaged transitive fanout is merged
  /// from scratch. The result is bitwise identical to CutManager(aig,
  /// params) — dominance, priority order and truncation depend only on leaf
  /// sets and merge order, both preserved by an order-preserving remap.
  CutManager(const Aig& aig, const CutParams& params, const CutManager& prev,
             const CutReuse& reuse);

  const std::vector<Cut>& cuts(std::uint32_t node) const {
    return cuts_[node];
  }

  const CutParams& params() const { return params_; }

  /// Nodes whose cut sets were carried by the incremental constructor.
  std::size_t reused_nodes() const { return reused_nodes_; }

  /// Approximate heap footprint (leaf arrays + spines).
  std::size_t memory_bytes() const;

private:
  void enumerate_node(const Aig& aig, std::uint32_t id, std::vector<Cut>& merged,
                      Cut& candidate);

  CutParams params_;
  std::vector<std::vector<Cut>> cuts_;
  std::size_t reused_nodes_ = 0;
};

/// Merge two cuts if the union has at most k leaves; returns false otherwise.
bool merge_cuts(const Cut& a, const Cut& b, unsigned k, Cut& out);

}  // namespace flowgen::aig
