#pragma once
// Compact versioned binary AIG serialisation — the netlist form that
// crosses the evald wire (protocol v2 LoadDesign) and can be written to
// disk. The encoding is AIGER-inspired: node ids are topological by
// construction, so each AND is two LEB128 varint deltas against its own
// literal, which makes a typical design ~2-3 bytes per gate.
//
// Decoding is strict by design: every frame is bounds-checked before any
// allocation, the graph is rebuilt through Aig::land so the structural
// invariants (normalised fanin order, no trivial or duplicate ANDs,
// topological ids) are *verified* rather than trusted, and the embedded
// content fingerprint must match the reconstructed graph. Corrupt or
// adversarial input raises SerializeError — never UB, never a graph that
// differs from what the encoder saw. Round-trips are bit-identical:
// decode(encode(g)) reproduces node ids, PI/PO order, levels and therefore
// fingerprint() and every downstream QoR exactly.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "aig/aig.hpp"

namespace flowgen::aig {

/// Raised by decode_binary (and encode_binary on unencodable graphs, e.g.
/// oversized name strings) — the typed rejection path for corrupt input.
class SerializeError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Bumped on any incompatible layout change; decode rejects mismatches.
inline constexpr std::uint8_t kAigFormatVersion = 1;

/// "FAIG" — catches wrong-blob-entirely before any other parsing.
inline constexpr std::uint32_t kAigMagic = 0x46414947;

/// Serialize `g` to the binary format (header, name, node deltas, POs,
/// fingerprint trailer). Pure; never fails on graphs built through the Aig
/// API except for names longer than 64 KiB.
std::vector<std::uint8_t> encode_binary(const Aig& g);

/// Parse a blob produced by encode_binary. Throws SerializeError on bad
/// magic/version, truncated or trailing bytes, out-of-range node
/// references, non-canonical structure (trivial/duplicate ANDs), or a
/// fingerprint trailer that does not match the decoded graph.
Aig decode_binary(std::span<const std::uint8_t> blob);

/// Lower-case hex spelling of a fingerprint ("8f3a..."), for logs, store
/// filenames and error messages.
std::string fingerprint_hex(const Fingerprint& fp);

}  // namespace flowgen::aig
