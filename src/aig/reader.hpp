#pragma once
// BLIF reader: loads external combinational netlists (e.g. designs written
// by other tools, or this project's own BLIF output) into an AIG, so the
// FlowGen pipeline is usable on circuits beyond the bundled generators.
//
// Supported subset: .model/.inputs/.outputs/.names with SOP covers (both
// on-set "1" and off-set "0" output planes), '\' line continuation, '#'
// comments, .end. Latches and subcircuits are rejected with an error.

#include <iosfwd>
#include <string>

#include "aig/aig.hpp"

namespace flowgen::aig {

/// Parse BLIF from a stream. Throws std::runtime_error with a line-numbered
/// message on malformed input.
Aig read_blif(std::istream& is);

/// Parse BLIF from a file.
Aig read_blif_file(const std::string& path);

}  // namespace flowgen::aig
