#include "aig/reader.hpp"

#include <fstream>
#include <istream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace flowgen::aig {

namespace {

struct Names {
  std::vector<std::string> signals;  ///< inputs..., output last
  std::vector<std::string> cover;    ///< SOP rows like "1-0 1"
  std::size_t line = 0;
};

struct BlifFile {
  std::string model;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<Names> tables;
};

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("read_blif: line " + std::to_string(line) + ": " +
                           what);
}

std::vector<std::string> tokenize(const std::string& s) {
  std::istringstream ss(s);
  std::vector<std::string> out;
  std::string tok;
  while (ss >> tok) out.push_back(tok);
  return out;
}

BlifFile parse(std::istream& is) {
  BlifFile file;
  std::string raw;
  std::size_t line_no = 0;
  Names* current = nullptr;

  std::string logical;
  std::size_t logical_start = 0;
  auto next_logical = [&](std::string& out) -> bool {
    out.clear();
    while (std::getline(is, raw)) {
      ++line_no;
      if (const auto hash = raw.find('#'); hash != std::string::npos) {
        raw.erase(hash);
      }
      if (!out.empty()) out += ' ';
      out += raw;
      // '\' continuation joins the next physical line.
      const auto end = out.find_last_not_of(" \t\r");
      if (end != std::string::npos && out[end] == '\\') {
        out.erase(end);
        continue;
      }
      logical_start = line_no;
      return true;
    }
    return !out.empty();
  };

  while (next_logical(logical)) {
    const std::vector<std::string> tok = tokenize(logical);
    if (tok.empty()) continue;
    if (tok[0] == ".model") {
      if (tok.size() > 1) file.model = tok[1];
    } else if (tok[0] == ".inputs") {
      file.inputs.insert(file.inputs.end(), tok.begin() + 1, tok.end());
    } else if (tok[0] == ".outputs") {
      file.outputs.insert(file.outputs.end(), tok.begin() + 1, tok.end());
    } else if (tok[0] == ".names") {
      file.tables.push_back(Names{});
      current = &file.tables.back();
      current->signals.assign(tok.begin() + 1, tok.end());
      current->line = logical_start;
      if (current->signals.empty()) fail(logical_start, ".names needs a signal");
    } else if (tok[0] == ".end") {
      break;
    } else if (tok[0] == ".latch" || tok[0] == ".subckt" ||
               tok[0] == ".gate") {
      fail(logical_start, "unsupported construct " + tok[0]);
    } else if (tok[0][0] == '.') {
      // Ignore other dot-directives (.default_input_arrival etc.).
    } else {
      if (current == nullptr) fail(logical_start, "cover row outside .names");
      current->cover.push_back(logical);
    }
  }
  return file;
}

/// Build the function of one SOP table over already-resolved input lits.
Lit build_cover(Aig& g, const Names& table, const std::vector<Lit>& inputs) {
  // Constant tables: ".names x" with cover "1" (const1) or empty (const0).
  std::vector<Lit> terms;
  bool off_set = false;
  bool saw_row = false;
  for (const std::string& row_str : table.cover) {
    const std::vector<std::string> parts = tokenize(row_str);
    if (parts.empty()) continue;
    saw_row = true;
    std::string in_plane, out_plane;
    if (parts.size() == 1) {
      in_plane = "";
      out_plane = parts[0];
    } else if (parts.size() == 2) {
      in_plane = parts[0];
      out_plane = parts[1];
    } else {
      fail(table.line, "malformed cover row '" + row_str + "'");
    }
    if (in_plane.size() != inputs.size()) {
      fail(table.line, "cover arity mismatch");
    }
    if (out_plane != "0" && out_plane != "1") {
      fail(table.line, "output plane must be 0 or 1");
    }
    off_set = (out_plane == "0");

    std::vector<Lit> product;
    for (std::size_t i = 0; i < in_plane.size(); ++i) {
      if (in_plane[i] == '1') {
        product.push_back(inputs[i]);
      } else if (in_plane[i] == '0') {
        product.push_back(lit_not(inputs[i]));
      } else if (in_plane[i] != '-') {
        fail(table.line, "bad cover character");
      }
    }
    terms.push_back(g.land_n(std::move(product)));
  }
  if (!saw_row) return kLitFalse;  // empty cover = constant 0
  const Lit sum = g.lor_n(std::move(terms));
  // An off-set cover lists the minterms of the COMPLEMENT.
  return off_set ? lit_not(sum) : sum;
}

}  // namespace

Aig read_blif(std::istream& is) {
  const BlifFile file = parse(is);
  Aig g;
  g.name = file.model;

  std::map<std::string, Lit> signal;
  for (const std::string& in : file.inputs) signal[in] = g.add_pi();

  // Tables may be listed out of order; resolve with repeated sweeps
  // (cheap, and cycles are reported instead of looping forever).
  std::vector<bool> done(file.tables.size(), false);
  std::size_t remaining = file.tables.size();
  while (remaining > 0) {
    bool progress = false;
    for (std::size_t t = 0; t < file.tables.size(); ++t) {
      if (done[t]) continue;
      const Names& table = file.tables[t];
      std::vector<Lit> inputs;
      bool ready = true;
      for (std::size_t i = 0; i + 1 < table.signals.size(); ++i) {
        const auto it = signal.find(table.signals[i]);
        if (it == signal.end()) {
          ready = false;
          break;
        }
        inputs.push_back(it->second);
      }
      if (!ready) continue;
      const std::string& out_name = table.signals.back();
      signal[out_name] = build_cover(g, table, inputs);
      done[t] = true;
      --remaining;
      progress = true;
    }
    if (!progress) {
      fail(0, "combinational cycle or undriven signal in .names network");
    }
  }

  for (const std::string& out : file.outputs) {
    const auto it = signal.find(out);
    if (it == signal.end()) fail(0, "undriven output " + out);
    g.add_po(it->second);
  }
  return g;
}

Aig read_blif_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("read_blif_file: cannot open " + path);
  return read_blif(is);
}

}  // namespace flowgen::aig
