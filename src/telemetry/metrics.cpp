#include "telemetry/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>

namespace flowgen::telemetry {

namespace {

std::atomic<bool> g_enabled{true};

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

namespace detail {

std::size_t stripe_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return idx;
}

}  // namespace detail

std::uint64_t Gauge::to_bits(double v) { return std::bit_cast<std::uint64_t>(v); }
double Gauge::from_bits(std::uint64_t bits) { return std::bit_cast<double>(bits); }

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  stripes_ = std::vector<Stripe>(detail::kStripes);
  for (Stripe& s : stripes_) {
    s.buckets = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::observe(double v) {
  if (!enabled()) return;
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Stripe& s = stripes_[detail::stripe_index()];
  s.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t cur = s.sum_bits.load(std::memory_order_relaxed);
  while (!s.sum_bits.compare_exchange_weak(
      cur, std::bit_cast<std::uint64_t>(std::bit_cast<double>(cur) + v),
      std::memory_order_relaxed)) {
  }
}

void Histogram::reset() {
  for (Stripe& s : stripes_) {
    for (std::atomic<std::uint64_t>& b : s.buckets) {
      b.store(0, std::memory_order_relaxed);
    }
    s.count.store(0, std::memory_order_relaxed);
    s.sum_bits.store(0, std::memory_order_relaxed);
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Stripe& s : stripes_) {
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      snap.counts[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum +=
        std::bit_cast<double>(s.sum_bits.load(std::memory_order_relaxed));
  }
  return snap;
}

std::vector<double> exp_buckets(double start, double factor,
                                std::size_t count) {
  std::vector<double> out;
  out.reserve(count);
  double v = start;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

std::vector<double> default_ms_buckets() {
  // 0.01ms .. ~42s in x3.16 (half-decade) steps: transform passes are
  // tens of us to tens of ms, shards seconds — one grid covers both.
  return exp_buckets(0.01, 3.1622776601683795, 14);
}

// --------------------------------------------------------------- registry --

namespace {

enum class Kind { kCounter, kGauge, kHistogram };

struct Metric {
  Kind kind = Kind::kCounter;
  std::string name;
  std::string help;
  std::string label_str;  ///< pre-rendered `{k="v",...}` or ""
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

struct Registry {
  std::mutex mu;
  /// Keyed by name + label_str; std::map so scrapes come out name-sorted.
  std::map<std::string, Metric> metrics;
  std::vector<std::function<std::string()>> collectors;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives static teardown
  return *r;
}

std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string render_labels(Labels labels) {
  if (labels.empty()) return "";
  std::sort(labels.begin(), labels.end());
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out.push_back(',');
    out += labels[i].first + "=\"" + escape_label_value(labels[i].second) +
           "\"";
  }
  out.push_back('}');
  return out;
}

/// Integers render without a decimal point (counters look like counters);
/// everything else as shortest round-trippable-enough %g.
std::string format_value(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%" PRId64, static_cast<std::int64_t>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.10g", v);
  }
  return buf;
}

std::string format_bound(double b) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", b);
  return buf;
}

/// Insert `extra` ('le="..."') into a label string ("" or "{...}").
std::string labels_with(const std::string& label_str,
                        const std::string& extra) {
  if (label_str.empty()) return "{" + extra + "}";
  return label_str.substr(0, label_str.size() - 1) + "," + extra + "}";
}

Metric& find_or_create(const std::string& name, const std::string& help,
                       const Labels& labels, Kind kind) {
  Registry& reg = registry();
  const std::string label_str = render_labels(labels);
  const std::string key = name + label_str;
  std::lock_guard lock(reg.mu);
  const auto it = reg.metrics.find(key);
  if (it != reg.metrics.end()) {
    if (it->second.kind != kind) {
      throw std::logic_error("telemetry: metric '" + name +
                             "' re-registered as a different kind");
    }
    return it->second;
  }
  Metric m;
  m.kind = kind;
  m.name = name;
  m.help = help;
  m.label_str = label_str;
  return reg.metrics.emplace(key, std::move(m)).first->second;
}

}  // namespace

Counter& counter(const std::string& name, const std::string& help,
                 Labels labels) {
  Metric& m = find_or_create(name, help, labels, Kind::kCounter);
  if (!m.counter) m.counter = std::make_unique<Counter>();
  return *m.counter;
}

Gauge& gauge(const std::string& name, const std::string& help,
             Labels labels) {
  Metric& m = find_or_create(name, help, labels, Kind::kGauge);
  if (!m.gauge) m.gauge = std::make_unique<Gauge>();
  return *m.gauge;
}

Histogram& histogram(const std::string& name, const std::string& help,
                     std::vector<double> bounds, Labels labels) {
  Metric& m = find_or_create(name, help, labels, Kind::kHistogram);
  if (!m.histogram) m.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *m.histogram;
}

void register_collector(std::function<std::string()> fn) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  reg.collectors.push_back(std::move(fn));
}

std::string render_prometheus() {
  Registry& reg = registry();
  std::ostringstream os;
  std::string last_name;
  std::vector<std::function<std::string()>> collectors;
  {
    std::lock_guard lock(reg.mu);
    // metrics is name-sorted (map key starts with the name), so label
    // variants of one metric are contiguous: HELP/TYPE once per name.
    for (const auto& [key, m] : reg.metrics) {
      if (m.name != last_name) {
        const char* type = m.kind == Kind::kCounter   ? "counter"
                           : m.kind == Kind::kGauge   ? "gauge"
                                                      : "histogram";
        os << "# HELP " << m.name << ' ' << m.help << '\n';
        os << "# TYPE " << m.name << ' ' << type << '\n';
        last_name = m.name;
      }
      switch (m.kind) {
        case Kind::kCounter:
          os << m.name << m.label_str << ' ' << m.counter->value() << '\n';
          break;
        case Kind::kGauge:
          os << m.name << m.label_str << ' '
             << format_value(m.gauge->value()) << '\n';
          break;
        case Kind::kHistogram: {
          const Histogram::Snapshot snap = m.histogram->snapshot();
          std::uint64_t cum = 0;
          for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
            cum += snap.counts[i];
            os << m.name << "_bucket"
               << labels_with(m.label_str,
                              "le=\"" + format_bound(snap.bounds[i]) + "\"")
               << ' ' << cum << '\n';
          }
          cum += snap.counts.back();
          os << m.name << "_bucket"
             << labels_with(m.label_str, "le=\"+Inf\"") << ' ' << cum << '\n';
          os << m.name << "_sum" << m.label_str << ' '
             << format_value(snap.sum) << '\n';
          os << m.name << "_count" << m.label_str << ' ' << snap.count
             << '\n';
          break;
        }
      }
    }
    collectors = reg.collectors;
  }
  // Collectors run outside the registry lock: they may (transitively)
  // register metrics or take their own locks.
  for (const auto& fn : collectors) os << fn();
  return os.str();
}

std::string merge_prometheus(std::span<const std::string> texts) {
  // First-seen order of names and of sample keys; values sum numerically.
  std::vector<std::string> name_order;
  std::map<std::string, std::pair<std::string, std::string>> headers;
  std::map<std::string, double> values;
  std::map<std::string, std::vector<std::string>> samples_of;  // name->keys

  const auto base_name = [](const std::string& sample_name) {
    // Strip histogram suffixes so _bucket/_sum/_count group under their
    // metric's HELP/TYPE header.
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::size_t n = std::string(suffix).size();
      if (sample_name.size() > n &&
          sample_name.compare(sample_name.size() - n, n, suffix) == 0) {
        return sample_name.substr(0, sample_name.size() - n);
      }
    }
    return sample_name;
  };

  for (const std::string& text : texts) {
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
      if (line.empty()) continue;
      if (line[0] == '#') {
        std::istringstream ls(line);
        std::string hash, kw, name;
        ls >> hash >> kw >> name;
        if (kw != "HELP" && kw != "TYPE") continue;
        auto& hdr = headers[name];
        std::string& slot = kw == "HELP" ? hdr.first : hdr.second;
        if (slot.empty()) slot = line;
        if (std::find(name_order.begin(), name_order.end(), name) ==
            name_order.end()) {
          name_order.push_back(name);
        }
        continue;
      }
      // Sample line: `name{labels} value` or `name value`. The value is
      // the suffix after the last space outside braces — labels never
      // contain unescaped spaces in our own output, so last-space works.
      const std::size_t sp = line.find_last_of(' ');
      if (sp == std::string::npos) continue;
      const std::string key = line.substr(0, sp);
      char* end = nullptr;
      const double v = std::strtod(line.c_str() + sp + 1, &end);
      if (end == line.c_str() + sp + 1) continue;  // not numeric
      const std::size_t brace = key.find('{');
      const std::string sample_name =
          brace == std::string::npos ? key : key.substr(0, brace);
      const std::string group = base_name(sample_name);
      if (std::find(name_order.begin(), name_order.end(), group) ==
          name_order.end()) {
        name_order.push_back(group);
      }
      auto [it, fresh] = values.emplace(key, v);
      if (!fresh) it->second += v;
      std::vector<std::string>& keys = samples_of[group];
      if (fresh) keys.push_back(key);
    }
  }

  std::ostringstream os;
  for (const std::string& name : name_order) {
    if (const auto it = headers.find(name); it != headers.end()) {
      if (!it->second.first.empty()) os << it->second.first << '\n';
      if (!it->second.second.empty()) os << it->second.second << '\n';
    }
    for (const std::string& key : samples_of[name]) {
      os << key << ' ' << format_value(values[key]) << '\n';
    }
  }
  return os.str();
}

void reset_all() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  for (auto& [key, m] : reg.metrics) {
    if (m.counter) m.counter->reset();
    if (m.gauge) m.gauge->reset();
    if (m.histogram) m.histogram->reset();
  }
}

}  // namespace flowgen::telemetry
