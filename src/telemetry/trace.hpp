#pragma once
// Chrome trace-event tracing, viewable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. One process-wide trace file; every completed Span (or
// explicit emit_trace_event) appends one complete event ("ph":"X") as a
// single O_APPEND write, so several processes — a coordinator and its
// forked loopback workers — can share one file and their events interleave
// without tearing. The file is the JSON-array flavour of the format, which
// by specification tolerates a missing closing `]` and trailing commas
// exactly so writers can append forever; scripts/check_trace.py normalises
// and validates it, docs/observability.md walks through loading one.
//
// Cost model: with no trace file open, constructing a Span is one relaxed
// atomic load; compiling with FLOWGEN_NO_SPANS (cmake -DFLOWGEN_SPANS=OFF)
// removes Span bodies entirely. Timestamps are CLOCK_MONOTONIC
// microseconds — system-wide on Linux, so spans from different processes
// on one machine line up on one Perfetto timeline.

#include <cstdint>
#include <string>

namespace flowgen::telemetry {

/// True while a trace file is open in this process.
bool tracing();

/// Open (create/append) `path` and start emitting events. Returns false
/// (and stays off) when the file cannot be opened. Idempotent per path;
/// a second start replaces the first file handle.
bool start_tracing(const std::string& path);

/// Stop emitting and close the file. Safe when not tracing.
void stop_tracing();

/// CLOCK_MONOTONIC in microseconds (0 before the first call's epoch).
std::uint64_t trace_now_us();

/// Append one complete event. `category`/`name` must not contain `"` or
/// `\` (they are embedded verbatim); `args_body` is either empty or the
/// inside of a JSON object (`"k":1,"s":"v"`). No-op while not tracing.
void emit_trace_event(const char* category, const char* name,
                      std::uint64_t ts_us, std::uint64_t dur_us,
                      const std::string& args_body = {});

namespace detail {
/// Append `,"key":<json-escaped value>` to `body`.
void append_arg(std::string& body, const char* key, std::int64_t v);
void append_arg(std::string& body, const char* key, double v);
void append_arg(std::string& body, const char* key, const std::string& v);
}  // namespace detail

#ifndef FLOWGEN_NO_SPANS

/// RAII scope timer: constructs cheap (one relaxed load when tracing is
/// off), emits one complete event covering the scope on destruction.
class Span {
public:
  Span(const char* category, const char* name)
      : active_(tracing()), category_(category), name_(name) {
    if (active_) t0_ = trace_now_us();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (active_) {
      emit_trace_event(category_, name_, t0_, trace_now_us() - t0_, args_);
    }
  }

  void arg(const char* key, std::int64_t v) {
    if (active_) detail::append_arg(args_, key, v);
  }
  void arg(const char* key, std::uint64_t v) {
    if (active_) detail::append_arg(args_, key, static_cast<std::int64_t>(v));
  }
  void arg(const char* key, double v) {
    if (active_) detail::append_arg(args_, key, v);
  }
  void arg(const char* key, const std::string& v) {
    if (active_) detail::append_arg(args_, key, v);
  }

private:
  bool active_;
  const char* category_;
  const char* name_;
  std::uint64_t t0_ = 0;
  std::string args_;
};

#else  // FLOWGEN_NO_SPANS: spans compile away entirely.

class Span {
public:
  Span(const char*, const char*) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void arg(const char*, std::int64_t) {}
  void arg(const char*, std::uint64_t) {}
  void arg(const char*, double) {}
  void arg(const char*, const std::string&) {}
};

#endif

}  // namespace flowgen::telemetry
