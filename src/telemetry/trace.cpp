#include "telemetry/trace.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <mutex>

namespace flowgen::telemetry {

namespace {

std::atomic<bool> g_tracing{false};
std::atomic<int> g_fd{-1};
std::mutex g_open_mu;  ///< serialises start/stop; emits never take it

long current_tid() {
#ifdef __linux__
  thread_local const long tid = ::syscall(SYS_gettid);
  return tid;
#else
  return 0;
#endif
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

bool tracing() { return g_tracing.load(std::memory_order_relaxed); }

std::uint64_t trace_now_us() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000ull;
}

bool start_tracing(const std::string& path) {
  std::lock_guard lock(g_open_mu);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return false;
  struct stat st{};
  if (::fstat(fd, &st) == 0 && st.st_size == 0) {
    // First writer opens the array. A race between two fresh processes is
    // harmless in practice (the loopback forks after start_tracing), and
    // the validator tolerates a duplicated opener anyway.
    const char open_bracket[] = "[\n";
    (void)!::write(fd, open_bracket, sizeof open_bracket - 1);
  }
  const int old = g_fd.exchange(fd, std::memory_order_acq_rel);
  if (old >= 0) ::close(old);
  g_tracing.store(true, std::memory_order_release);
  return true;
}

void stop_tracing() {
  std::lock_guard lock(g_open_mu);
  g_tracing.store(false, std::memory_order_release);
  const int old = g_fd.exchange(-1, std::memory_order_acq_rel);
  if (old >= 0) ::close(old);
}

void emit_trace_event(const char* category, const char* name,
                      std::uint64_t ts_us, std::uint64_t dur_us,
                      const std::string& args_body) {
  if (!tracing()) return;
  const int fd = g_fd.load(std::memory_order_acquire);
  if (fd < 0) return;
  char head[512];
  const int n = std::snprintf(
      head, sizeof head,
      "{\"ph\":\"X\",\"cat\":\"%s\",\"name\":\"%s\",\"ts\":%" PRIu64
      ",\"dur\":%" PRIu64 ",\"pid\":%d,\"tid\":%ld",
      category, name, ts_us, dur_us, static_cast<int>(::getpid()),
      current_tid());
  if (n < 0 || n >= static_cast<int>(sizeof head)) return;
  std::string event(head, static_cast<std::size_t>(n));
  if (!args_body.empty()) {
    // args_ bodies start with ',' (append_arg) — strip it inside {}.
    event += ",\"args\":{";
    event.append(args_body, 1, std::string::npos);
    event += "}";
  }
  event += "},\n";
  // One write() per event: O_APPEND makes concurrent writers (threads and
  // forked processes sharing the file) interleave at event granularity.
  (void)!::write(fd, event.data(), event.size());
}

namespace detail {

void append_arg(std::string& body, const char* key, std::int64_t v) {
  char buf[96];
  std::snprintf(buf, sizeof buf, ",\"%s\":%" PRId64, key, v);
  body += buf;
}

void append_arg(std::string& body, const char* key, double v) {
  char buf[96];
  std::snprintf(buf, sizeof buf, ",\"%s\":%.6g", key, v);
  body += buf;
}

void append_arg(std::string& body, const char* key, const std::string& v) {
  body += ",\"";
  body += key;
  body += "\":\"";
  body += json_escape(v);
  body += "\"";
}

}  // namespace detail

}  // namespace flowgen::telemetry
