#pragma once
// Process-wide metrics registry: monotonic counters, gauges, and
// fixed-bucket histograms, exported in the Prometheus text-exposition
// format. Built for instrumentation *inside* the evaluation hot path, so
// the update cost is a few nanoseconds:
//
//  * counters/histogram buckets are striped across cache-line-aligned
//    atomic slots indexed by thread (relaxed increments, no CAS loops on
//    the common path); stripes are summed only on scrape,
//  * every metric is registered once by (name, labels) and then cached as
//    a reference at the call site — the hot path never touches the
//    registry map or any string,
//  * the whole layer is gated on one relaxed atomic (set_enabled), so a
//    single binary can A/B telemetry-on vs telemetry-off — that is how
//    bench_evaluator prices the overhead budget.
//
// Scrapes (render_prometheus) are lock-light and read-only; the worker
// admin socket's `metrics` command and the coordinator's fleet-wide
// aggregation (merge_prometheus over per-worker scrapes) are both built on
// it. docs/observability.md catalogues the metric names.

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace flowgen::telemetry {

/// Runtime master switch (default on). When off, every inc/observe/set is
/// one relaxed load and a branch — the A/B baseline for the overhead
/// bench. Scrapes still work (they report whatever was recorded).
bool enabled();
void set_enabled(bool on);

/// Label set of one metric instance, e.g. {{"spec","rewrite"}}. Sorted by
/// key at registration; (name, labels) is the metric's identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {

/// Stripe count: enough that a 16-thread evaluator rarely shares a slot,
/// small enough that scraping stays trivial. Power of two (mask select).
inline constexpr std::size_t kStripes = 16;

struct alignas(64) Slot {
  std::atomic<std::uint64_t> v{0};
};

/// This thread's stripe: threads are numbered at first use and wrap.
std::size_t stripe_index();

}  // namespace detail

/// Monotonic counter. inc() is wait-free: one relaxed fetch_add on a
/// striped slot. Registry-owned; hold a reference, never copy.
class Counter {
public:
  void inc(std::uint64_t n = 1) {
    if (!enabled()) return;
    slots_[detail::stripe_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const detail::Slot& s : slots_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  /// Zero every stripe. Only sound while no thread is incrementing
  /// (tests, bench phase boundaries) — see reset_all().
  void reset() {
    for (detail::Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

private:
  detail::Slot slots_[detail::kStripes];
};

/// Last-value gauge with add/sub deltas (e.g. current cache bytes summed
/// across shards). A single CAS-looped double — gauges sit off the hot
/// path (insert/evict, not per-transform).
class Gauge {
public:
  void set(double v) {
    if (!enabled()) return;
    bits_.store(to_bits(v), std::memory_order_relaxed);
  }
  void add(double delta) {
    if (!enabled()) return;
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(cur, to_bits(from_bits(cur) + delta),
                                        std::memory_order_relaxed)) {
    }
  }
  void sub(double delta) { add(-delta); }
  double value() const { return from_bits(bits_.load(std::memory_order_relaxed)); }
  void reset() { bits_.store(0, std::memory_order_relaxed); }

private:
  static std::uint64_t to_bits(double v);
  static double from_bits(std::uint64_t bits);
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket histogram (Prometheus semantics: `bounds` are inclusive
/// upper bounds, an implicit +Inf bucket catches the rest). observe() is
/// a branchless-ish binary search plus three relaxed adds on this
/// thread's stripe; aggregation happens on scrape.
class Histogram {
public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;        ///< upper bounds, ascending
    std::vector<std::uint64_t> counts; ///< per bucket, bounds.size()+1 (+Inf)
    double sum = 0.0;
    std::uint64_t count = 0;
    double mean() const {
      return count ? sum / static_cast<double>(count) : 0.0;
    }
  };
  Snapshot snapshot() const;
  /// Zero all stripes (bounds unchanged); see Counter::reset caveats.
  void reset();

private:
  struct alignas(64) Stripe {
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_bits{0};  ///< double, CAS-accumulated
  };
  std::vector<double> bounds_;
  std::vector<Stripe> stripes_;
};

/// Default latency bounds: exponential ms grid from ~10us to ~30s.
std::vector<double> default_ms_buckets();
/// `count` exponential upper bounds: start, start*factor, ...
std::vector<double> exp_buckets(double start, double factor,
                                std::size_t count);

// ------------------------------------------------------------- registry --
//
// Registration is idempotent: the same (name, labels) returns the same
// object, so `static auto& c = telemetry::counter(...)` at a call site and
// per-spec cached references in an evaluator all share one instance.
// Registering a name that already exists as a different metric kind
// throws std::logic_error. All registration functions are thread-safe.

Counter& counter(const std::string& name, const std::string& help,
                 Labels labels = {});
Gauge& gauge(const std::string& name, const std::string& help,
             Labels labels = {});
Histogram& histogram(const std::string& name, const std::string& help,
                     std::vector<double> bounds, Labels labels = {});

/// Pull-model source: `fn` is called on every scrape and must return
/// well-formed Prometheus text (its own # HELP/# TYPE lines). Used for
/// counters owned elsewhere (e.g. aig::analysis_counters()).
void register_collector(std::function<std::string()> fn);

/// Render every registered metric (+ collector output) as Prometheus
/// text-exposition format, metrics sorted by name.
std::string render_prometheus();

/// Sum several Prometheus texts sample-by-sample (identical
/// name+labels add up; first-seen # HELP/# TYPE win) — the fleet-wide
/// aggregation the coordinator serves to `evalctl metrics`. Gauges sum
/// too, which is the right fleet semantics for the gauges exported here
/// (cache bytes, queue depths — extensive quantities).
std::string merge_prometheus(std::span<const std::string> texts);

/// Zero every counter/gauge/histogram (objects and references stay
/// valid). For tests and the bench's phase-delta measurements; not for
/// concurrent use with live increments.
void reset_all();

}  // namespace flowgen::telemetry
