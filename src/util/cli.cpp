#include "util/cli.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <string_view>

namespace flowgen::util {

namespace {

std::string env_name(const std::string& flag) {
  std::string out = "FLOWGEN_";
  for (char c : flag) {
    out += (c == '-') ? '_' : static_cast<char>(std::toupper(c));
  }
  return out;
}

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) continue;
    arg.remove_prefix(2);
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) !=
                                   0) {
      values_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      values_[std::string(arg)] = "1";
    }
  }
}

bool Cli::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  if (const auto it = values_.find(name); it != values_.end()) {
    return it->second;
  }
  if (const char* env = std::getenv(env_name(name).c_str())) return env;
  return fallback;
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  const std::string v = get(name, "");
  if (v.empty()) return fallback;
  return std::strtoll(v.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double fallback) const {
  const std::string v = get(name, "");
  if (v.empty()) return fallback;
  return std::strtod(v.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  std::string v = get(name, "");
  if (v.empty()) return fallback;
  std::transform(v.begin(), v.end(), v.begin(), ::tolower);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace flowgen::util
