#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace flowgen::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (stopping_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Dynamic work-stealing via a shared atomic counter: synthesis runtimes per
  // flow vary by >10x, so static chunking would leave workers idle.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t n_tasks = std::min(count, workers_.size());
  std::vector<std::future<void>> futs;
  futs.reserve(n_tasks);
  for (std::size_t t = 0; t < n_tasks; ++t) {
    futs.push_back(submit([next, count, &fn] {
      for (;;) {
        const std::size_t i = next->fetch_add(1);
        if (i >= count) return;
        fn(i);
      }
    }));
  }
  for (auto& f : futs) f.get();
}

}  // namespace flowgen::util
