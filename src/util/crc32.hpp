#pragma once
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum the
// QoR store stamps on every on-disk record so torn or bit-rotted entries
// are detected on reload instead of silently corrupting labels.

#include <cstdint>
#include <span>

namespace flowgen::util {

/// CRC-32 of `data`. `seed` chains partial buffers: crc32(b, crc32(a)) ==
/// crc32(a ++ b). Matches zlib's crc32 for the same bytes. Thread-safe.
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0);

}  // namespace flowgen::util
