#pragma once
// Failpoints: named, process-wide fault-injection points for chaos testing.
// A site declares a point with FLOWGEN_FAILPOINT("worker.eval.pre"); when a
// spec is configured for that name (via env, admin socket or code) the point
// fires its action — throw a typed error, crash the process, or sleep — on
// every hit or deterministically on every Nth. Unconfigured, the macro costs
// one relaxed atomic load (a global armed counter), and under
// -DFLOWGEN_FAILPOINTS=OFF it compiles to nothing at all, so points can sit
// on hot paths (transport send/recv, per-flow eval) without a bench tax.
//
// Spec grammar (one point):   [1in<N>*]<action>[(<arg>)][@key=<text>]
//   actions: off | error[(message)] | crash | delay(<ms>)
//   1in<N>  fires on every Nth (matching) hit — counter-based, not random,
//           so a seeded chaos schedule replays bit-identically.
//   @key=   only hits whose key matches fire (see FLOWGEN_FAILPOINT_KEYED);
//           lets a test poison one specific flow or one compaction
//           sync point. Keyless hits never match a keyed spec.
// Multiple points: "name=spec;name=spec" — accepted by configure_from_spec()
// and by the FLOWGEN_FAILPOINTS environment variable, which is applied once
// at process start (so forked loopback workers can be armed by the parent
// before the fork, and a daemon from its launch environment).
//
// The `crash` action raises SIGKILL against the current process: the same
// un-catchable death the QoR-store crash batteries inject by hand, so
// everything a chaos run proves holds for real SIGKILLs too.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace flowgen::util {

/// Thrown by a point whose configured action is `error`. Sites that must
/// surface a domain-specific type instead (e.g. transport I/O) catch this
/// and rethrow as their own error.
class FailpointError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

namespace failpoint {

/// True when at least one point is configured. The only cost a disarmed
/// process pays at a failpoint site; relaxed is fine — arming a point from
/// another thread only needs to be seen eventually.
bool any_armed() noexcept;

/// Slow path behind FLOWGEN_FAILPOINT: look up `name` and apply its action.
/// Unconfigured names return immediately.
void hit(const char* name);
/// Keyed variant: a spec with @key= fires only when `key` matches; a spec
/// without @key= treats keyed hits like plain ones.
void hit_keyed(const char* name, std::string_view key);

/// Arm `name` with `spec` ("off" disarms). Throws std::invalid_argument on
/// a malformed spec. Thread-safe; reconfiguring a live point is allowed.
void configure(const std::string& name, const std::string& spec);
/// Arm every "name=spec" in a ';'-separated list; returns points armed.
std::size_t configure_from_spec(const std::string& multi);
/// Apply $FLOWGEN_FAILPOINTS (done automatically at process start; exposed
/// for tests). Malformed entries are reported on stderr, not fatal.
std::size_t configure_from_env();

void clear(const std::string& name);
void clear_all();

struct Info {
  std::string name;
  std::string spec;      ///< normalized, round-trips through configure()
  std::uint64_t hits = 0;   ///< times the site executed while armed
  std::uint64_t fires = 0;  ///< times the action actually ran
};
/// Snapshot of every armed point, name-sorted.
std::vector<Info> list();
/// Human-readable listing for the admin socket ("none armed" when empty).
std::string describe();

/// Lower-case hex of a byte range — the canonical key encoding for points
/// keyed by packed flow steps, shared by injection sites and tests.
std::string key_hex(const void* data, std::size_t len);

}  // namespace failpoint
}  // namespace flowgen::util

#if defined(FLOWGEN_NO_FAILPOINTS)
// Compiled out: name/key are swallowed unevaluated (sizeof does not
// evaluate), so sites cannot drift into relying on side effects.
#define FLOWGEN_FAILPOINT(name) \
  do {                          \
    (void)sizeof(name);         \
  } while (0)
#define FLOWGEN_FAILPOINT_KEYED(name, key) \
  do {                                     \
    (void)sizeof(name);                    \
    (void)sizeof((key));                   \
  } while (0)
#else
#define FLOWGEN_FAILPOINT(name)                    \
  do {                                             \
    if (::flowgen::util::failpoint::any_armed())   \
      ::flowgen::util::failpoint::hit(name);       \
  } while (0)
// `key` is only evaluated when some point is armed, so an expensive key
// expression (hex of a flow key) costs nothing in a quiet process.
#define FLOWGEN_FAILPOINT_KEYED(name, key)              \
  do {                                                  \
    if (::flowgen::util::failpoint::any_armed())        \
      ::flowgen::util::failpoint::hit_keyed(name, key); \
  } while (0)
#endif
