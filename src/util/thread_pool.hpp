#pragma once
// Minimal fixed-size thread pool. Flow evaluation (synthesis + mapping of
// thousands of flows) is embarrassingly parallel; the paper ran it on a
// 2x12-core Xeon, we parallelise the same loop here.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace flowgen::util {

class ThreadPool {
public:
  /// Spawns `threads` workers (default: hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      jobs_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Apply fn(i) for i in [0, count) across the pool and wait for completion.
  /// fn must be safe to call concurrently for distinct i.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace flowgen::util
