#include "util/rng.hpp"

#include <cmath>

namespace flowgen::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro requires a non-zero state; splitmix64 of any seed gives one with
  // overwhelming probability, but make it a certainty.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  has_cached_normal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Rejection sampling over the largest multiple of `bound`.
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return v % bound;
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::fork() {
  Rng child(next() ^ 0xD1B54A32D192ED03ull);
  return child;
}

}  // namespace flowgen::util
