#include "util/crc32.hpp"

#include <array>
#include <cstddef>

namespace flowgen::util {

namespace {

// Slicing-by-16: table[0] is the classic byte-at-a-time table; table[k]
// maps a byte to its CRC contribution k positions further along, so the
// hot loop folds 16 input bytes with 16 independent lookups per iteration
// (~6x the throughput of the byte loop on segment-sized buffers). The
// polynomial and the produced values are exactly those of zlib's crc32 —
// every on-disk CRC stays bit-identical.
constexpr std::array<std::array<std::uint32_t, 256>, 16> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 16> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = t[0][i];
    for (std::size_t k = 1; k < 16; ++k) {
      c = t[0][c & 0xFFu] ^ (c >> 8);
      t[k][i] = c;
    }
  }
  return t;
}

constexpr std::array<std::array<std::uint32_t, 256>, 16> kTables =
    make_tables();

// Endian-neutral 4-byte gather; on little-endian targets the compiler
// collapses it into one load.
inline std::uint32_t load_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const std::uint8_t* p = data.data();
  std::size_t len = data.size();
  while (len >= 16) {
    const std::uint32_t a = load_u32(p) ^ c;
    const std::uint32_t b = load_u32(p + 4);
    const std::uint32_t d = load_u32(p + 8);
    const std::uint32_t e = load_u32(p + 12);
    c = kTables[15][a & 0xFFu] ^ kTables[14][(a >> 8) & 0xFFu] ^
        kTables[13][(a >> 16) & 0xFFu] ^ kTables[12][a >> 24] ^
        kTables[11][b & 0xFFu] ^ kTables[10][(b >> 8) & 0xFFu] ^
        kTables[9][(b >> 16) & 0xFFu] ^ kTables[8][b >> 24] ^
        kTables[7][d & 0xFFu] ^ kTables[6][(d >> 8) & 0xFFu] ^
        kTables[5][(d >> 16) & 0xFFu] ^ kTables[4][d >> 24] ^
        kTables[3][e & 0xFFu] ^ kTables[2][(e >> 8) & 0xFFu] ^
        kTables[1][(e >> 16) & 0xFFu] ^ kTables[0][e >> 24];
    p += 16;
    len -= 16;
  }
  while (len > 0) {
    c = kTables[0][(c ^ *p) & 0xFFu] ^ (c >> 8);
    ++p;
    --len;
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace flowgen::util
