#pragma once
// Terminal scatter/series plots so every reproduced figure is visible
// directly in bench output, mirroring the paper's plots in shape.

#include <span>
#include <string>
#include <vector>

namespace flowgen::util {

struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
  char glyph = '*';
};

struct PlotOptions {
  std::size_t width = 72;
  std::size_t height = 20;
  std::string x_label;
  std::string y_label;
  std::string title;
};

/// Render one or more (x, y) series onto a character grid with axis ranges
/// derived from the data. Later series overwrite earlier glyphs, so draw the
/// "background cloud" first and highlighted points last.
std::string scatter_plot(std::span<const Series> series,
                         const PlotOptions& options);

/// Render a single-variable histogram as a horizontal bar chart.
std::string histogram_plot(std::span<const double> xs, std::size_t bins,
                           const PlotOptions& options);

}  // namespace flowgen::util
