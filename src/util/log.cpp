#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace flowgen::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::once_flag g_env_once;

void init_from_env() {
  const char* env = std::getenv("FLOWGEN_LOG");
  if (!env) return;
  if (!std::strcmp(env, "debug")) g_level = LogLevel::kDebug;
  else if (!std::strcmp(env, "info")) g_level = LogLevel::kInfo;
  else if (!std::strcmp(env, "warn")) g_level = LogLevel::kWarn;
  else if (!std::strcmp(env, "error")) g_level = LogLevel::kError;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

double elapsed_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

std::mutex g_io_mutex;

}  // namespace

LogLevel log_level() {
  std::call_once(g_env_once, init_from_env);
  return g_level.load();
}

void set_log_level(LogLevel level) { g_level = level; }

void log_message(LogLevel level, const std::string& message) {
  std::lock_guard lock(g_io_mutex);
  std::fprintf(stderr, "[%9.3f] %s %s\n", elapsed_seconds(),
               level_name(level), message.c_str());
}

}  // namespace flowgen::util
