#include "util/log.hpp"

#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace flowgen::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::once_flag g_env_once;

void init_from_env() {
  const char* env = std::getenv("FLOWGEN_LOG");
  if (!env) return;
  if (!std::strcmp(env, "debug")) g_level = LogLevel::kDebug;
  else if (!std::strcmp(env, "info")) g_level = LogLevel::kInfo;
  else if (!std::strcmp(env, "warn")) g_level = LogLevel::kWarn;
  else if (!std::strcmp(env, "error")) g_level = LogLevel::kError;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

double elapsed_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

long current_tid() {
  // Kernel tid, not std::this_thread::get_id(): it matches what ps/gdb and
  // the Chrome-trace "tid" field show, so log lines and trace spans from
  // the same thread correlate directly. Cached per thread (one syscall).
  thread_local const long tid = ::syscall(SYS_gettid);
  return tid;
}

std::mutex g_io_mutex;

}  // namespace

LogLevel log_level() {
  std::call_once(g_env_once, init_from_env);
  return g_level.load();
}

void set_log_level(LogLevel level) { g_level = level; }

void log_message(LogLevel level, const std::string& message) {
  // Format into one buffer and write it with a single fwrite under the
  // mutex: concurrent loggers (serve executors, the reactor, the admin
  // thread) never interleave within a line even if stderr is a pipe whose
  // writes exceed PIPE_BUF.
  char prefix[64];
  std::snprintf(prefix, sizeof prefix, "[%9.3f] %s [t%ld] ",
                elapsed_seconds(), level_name(level), current_tid());
  std::string line;
  line.reserve(std::strlen(prefix) + message.size() + 1);
  line += prefix;
  line += message;
  line += '\n';
  std::lock_guard lock(g_io_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace flowgen::util
