#pragma once
// Small flag parser for the bench/example binaries: --flag=value / --flag
// value / env-var fallbacks, so every experiment knob from EXPERIMENTS.md can
// be overridden without recompiling.

#include <cstdint>
#include <map>
#include <string>

namespace flowgen::util {

class Cli {
public:
  Cli(int argc, const char* const* argv);

  /// True if --name was passed (with or without a value).
  bool has(const std::string& name) const;

  /// Value of --name, env fallback FLOWGEN_<NAME>, else `fallback`.
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// True when paper-scale experiments were requested (--full or
  /// FLOWGEN_FULL=1). Benches use this to switch from laptop-scale defaults.
  bool full_scale() const { return get_bool("full", false); }

private:
  std::map<std::string, std::string> values_;
};

}  // namespace flowgen::util
