#include "util/failpoint.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

namespace flowgen::util::failpoint {
namespace {

enum class Action { kError, kCrash, kDelay };

struct Spec {
  Action action = Action::kError;
  std::uint64_t one_in = 1;  ///< fire on every Nth matching hit
  int delay_ms = 0;
  std::string message;  ///< error action; empty = default text
  std::string key;      ///< empty = match every hit
};

struct Point {
  Spec spec;
  std::uint64_t hits = 0;     ///< site executions while armed
  std::uint64_t matched = 0;  ///< hits that passed the key filter
  std::uint64_t fires = 0;    ///< actions actually taken
};

// The armed count has constant initialization, so the macro's fast path is
// safe from any static initializer; the registry is a Meyers singleton for
// the same reason.
std::atomic<std::size_t> g_armed{0};

struct Registry {
  std::mutex mu;
  std::map<std::string, Point> points;
};

Registry& registry() {
  static Registry r;
  return r;
}

std::string normalize(const Spec& s) {
  std::string out;
  if (s.one_in > 1) out += "1in" + std::to_string(s.one_in) + "*";
  switch (s.action) {
    case Action::kError:
      out += "error";
      if (!s.message.empty()) out += "(" + s.message + ")";
      break;
    case Action::kCrash:
      out += "crash";
      break;
    case Action::kDelay:
      out += "delay(" + std::to_string(s.delay_ms) + ")";
      break;
  }
  if (!s.key.empty()) out += "@key=" + s.key;
  return out;
}

[[noreturn]] void bad_spec(const std::string& spec, const char* why) {
  throw std::invalid_argument("failpoint spec '" + spec + "': " + why);
}

/// Parse "[1in<N>*]<action>[(arg)][@key=<text>]". Returns false for "off".
bool parse_spec(const std::string& raw, Spec* out) {
  std::string s = raw;
  if (const auto at = s.find("@key="); at != std::string::npos) {
    out->key = s.substr(at + 5);
    if (out->key.empty()) bad_spec(raw, "empty @key=");
    s.erase(at);
  }
  if (s.rfind("1in", 0) == 0) {
    const auto star = s.find('*');
    if (star == std::string::npos) bad_spec(raw, "1in<N> needs '*action'");
    char* end = nullptr;
    const unsigned long long n = std::strtoull(s.c_str() + 3, &end, 10);
    if (n == 0 || end != s.c_str() + star) bad_spec(raw, "bad 1in<N> count");
    out->one_in = n;
    s.erase(0, star + 1);
  }
  std::string arg;
  if (const auto paren = s.find('('); paren != std::string::npos) {
    if (s.back() != ')') bad_spec(raw, "unterminated '('");
    arg = s.substr(paren + 1, s.size() - paren - 2);
    s.erase(paren);
  }
  if (s == "off") {
    if (!arg.empty()) bad_spec(raw, "off takes no argument");
    return false;
  }
  if (s == "error") {
    out->action = Action::kError;
    out->message = arg;
  } else if (s == "crash") {
    if (!arg.empty()) bad_spec(raw, "crash takes no argument");
    out->action = Action::kCrash;
  } else if (s == "delay") {
    char* end = nullptr;
    const long ms = std::strtol(arg.c_str(), &end, 10);
    if (arg.empty() || *end != '\0' || ms < 0)
      bad_spec(raw, "delay needs (ms)");
    out->action = Action::kDelay;
    out->delay_ms = static_cast<int>(ms);
  } else {
    bad_spec(raw, "unknown action (want off|error|crash|delay)");
  }
  return true;
}

/// Decide under the lock, act outside it (actions sleep or throw).
struct Decision {
  bool fire = false;
  Action action = Action::kError;
  int delay_ms = 0;
  std::string what;
};

Decision decide(const char* name, const std::string_view* key) {
  Registry& r = registry();
  Decision d;
  std::lock_guard lock(r.mu);
  const auto it = r.points.find(name);
  if (it == r.points.end()) return d;
  Point& p = it->second;
  ++p.hits;
  if (!p.spec.key.empty() && (key == nullptr || *key != p.spec.key)) return d;
  ++p.matched;
  if (p.matched % p.spec.one_in != 0) return d;
  ++p.fires;
  d.fire = true;
  d.action = p.spec.action;
  d.delay_ms = p.spec.delay_ms;
  if (p.spec.action == Action::kError) {
    d.what = p.spec.message.empty()
                 ? "failpoint '" + std::string(name) + "': injected error"
                 : p.spec.message;
  }
  return d;
}

void act(const Decision& d) {
  switch (d.action) {
    case Action::kError:
      throw FailpointError(d.what);
    case Action::kCrash:
      // The same un-catchable death a kernel OOM kill or operator SIGKILL
      // delivers; _exit is unreachable but keeps the path [[noreturn]]-safe
      // if the signal is somehow blocked.
      ::kill(::getpid(), SIGKILL);
      ::_exit(137);
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(d.delay_ms));
      break;
  }
}

// Applies $FLOWGEN_FAILPOINTS before main() so forked workers inherit the
// parent's armed points and daemons pick them up from their environment.
const std::size_t g_env_applied = configure_from_env();

}  // namespace

bool any_armed() noexcept {
  return g_armed.load(std::memory_order_relaxed) != 0;
}

void hit(const char* name) {
  const Decision d = decide(name, nullptr);
  if (d.fire) act(d);
}

void hit_keyed(const char* name, std::string_view key) {
  const Decision d = decide(name, &key);
  if (d.fire) act(d);
}

void configure(const std::string& name, const std::string& spec) {
  if (name.empty()) throw std::invalid_argument("failpoint: empty name");
  Spec parsed;
  if (!parse_spec(spec, &parsed)) {
    clear(name);
    return;
  }
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  auto [it, inserted] = r.points.try_emplace(name);
  it->second.spec = std::move(parsed);
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
}

std::size_t configure_from_spec(const std::string& multi) {
  std::size_t armed = 0;
  std::size_t start = 0;
  while (start <= multi.size()) {
    std::size_t end = multi.find(';', start);
    if (end == std::string::npos) end = multi.size();
    const std::string entry = multi.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::invalid_argument("failpoint entry '" + entry +
                                  "': want name=spec");
    configure(entry.substr(0, eq), entry.substr(eq + 1));
    ++armed;
  }
  return armed;
}

std::size_t configure_from_env() {
  const char* env = std::getenv("FLOWGEN_FAILPOINTS");
  if (env == nullptr || *env == '\0') return 0;
  try {
    return configure_from_spec(env);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "flowgen: ignoring FLOWGEN_FAILPOINTS: %s\n",
                 e.what());
    return 0;
  }
}

void clear(const std::string& name) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  if (r.points.erase(name) != 0)
    g_armed.fetch_sub(1, std::memory_order_relaxed);
}

void clear_all() {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  g_armed.fetch_sub(r.points.size(), std::memory_order_relaxed);
  r.points.clear();
}

std::vector<Info> list() {
  Registry& r = registry();
  std::vector<Info> out;
  std::lock_guard lock(r.mu);
  out.reserve(r.points.size());
  for (const auto& [name, p] : r.points)
    out.push_back({name, normalize(p.spec), p.hits, p.fires});
  return out;
}

std::string describe() {
  const std::vector<Info> points = list();
  if (points.empty()) return "none armed";
  std::string out;
  for (const Info& p : points) {
    out += p.name + " = " + p.spec + "  hits=" + std::to_string(p.hits) +
           " fires=" + std::to_string(p.fires) + "\n";
  }
  out.pop_back();
  return out;
}

std::string key_hex(const void* data, std::size_t len) {
  static const char* kDigits = "0123456789abcdef";
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::string out;
  out.reserve(len * 2);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kDigits[bytes[i] >> 4]);
    out.push_back(kDigits[bytes[i] & 0xf]);
  }
  return out;
}

}  // namespace flowgen::util::failpoint
