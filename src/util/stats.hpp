#pragma once
// Order statistics and summary statistics used by the Table-1 labeling model
// (percentile determinators) and by the experiment reports.

#include <cstddef>
#include <span>
#include <vector>

namespace flowgen::util {

/// Arithmetic mean. Returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Unbiased sample standard deviation. Returns 0 for fewer than two samples.
double stdev(std::span<const double> xs);

/// Minimum / maximum. Preconditions: non-empty.
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Quantile with linear interpolation between closest ranks (the "type 7"
/// definition used by numpy). q is clamped into [0,1]. Returns 0 for an
/// empty span; a single-element span returns that element for every q.
double quantile(std::span<const double> xs, double q);

/// Quantiles for several q at once; sorts a copy of the data exactly once.
std::vector<double> quantiles(std::span<const double> xs,
                              std::span<const double> qs);

/// Equal-width histogram over [lo, hi] with `bins` buckets; values outside the
/// range are clamped into the first/last bucket.
std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins);

/// Pearson correlation coefficient of two equally sized samples.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Summary of a sample in one struct, for compact report rows.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stdev = 0.0;
  double min = 0.0;
  double p5 = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> xs);

}  // namespace flowgen::util
