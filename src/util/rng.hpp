#pragma once
// Deterministic, fast pseudo-random number generation for the whole project.
//
// All stochastic components (flow sampling, weight init, dropout, workload
// generation) take an explicit Rng so experiments are reproducible from a
// single seed, which the paper's incremental training loop depends on.

#include <cstdint>
#include <limits>
#include <utility>

namespace flowgen::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation re-expressed in C++). Satisfies UniformRandomBitGenerator.
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initialise state from a 64-bit seed via splitmix64, guaranteeing a
  /// non-zero state for any seed.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound) with Lemire's rejection-free-ish method.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Bernoulli trial.
  bool chance(double p);

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Fork a statistically independent child generator (for thread-local use).
  Rng fork();

private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace flowgen::util
