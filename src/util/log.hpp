#pragma once
// Leveled stderr logging with a monotonic timestamp, shared by the pipeline
// (which reports incremental-training progress) and the benches.

#include <sstream>
#include <string>

namespace flowgen::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level (default Info; FLOWGEN_LOG=debug|info|warn|error).
LogLevel log_level();
void set_log_level(LogLevel level);

void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream ss;
  (ss << ... << std::forward<Args>(args));
  return ss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  log_message(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace flowgen::util
