#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "util/stats.hpp"

namespace flowgen::util {

namespace {

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  void include(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  double span() const { return hi > lo ? hi - lo : 1.0; }
};

std::string format_num(double v) {
  char buf[32];
  if (std::abs(v) >= 1e5 || (std::abs(v) < 1e-2 && v != 0.0)) {
    std::snprintf(buf, sizeof buf, "%.3g", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  }
  return buf;
}

}  // namespace

std::string scatter_plot(std::span<const Series> series,
                         const PlotOptions& options) {
  Range xr, yr;
  for (const auto& s : series) {
    for (double x : s.xs) xr.include(x);
    for (double y : s.ys) yr.include(y);
  }
  if (!std::isfinite(xr.lo) || !std::isfinite(yr.lo)) return "(empty plot)\n";

  const std::size_t w = options.width;
  const std::size_t h = options.height;
  std::vector<std::string> grid(h, std::string(w, ' '));

  for (const auto& s : series) {
    const std::size_t n = std::min(s.xs.size(), s.ys.size());
    for (std::size_t i = 0; i < n; ++i) {
      auto cx = static_cast<std::size_t>(
          (s.xs[i] - xr.lo) / xr.span() * static_cast<double>(w - 1) + 0.5);
      auto cy = static_cast<std::size_t>(
          (s.ys[i] - yr.lo) / yr.span() * static_cast<double>(h - 1) + 0.5);
      cx = std::min(cx, w - 1);
      cy = std::min(cy, h - 1);
      grid[h - 1 - cy][cx] = s.glyph;
    }
  }

  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';
  out << format_num(yr.hi) << " +" << std::string(w, '-') << "+\n";
  for (const auto& line : grid) {
    out << std::string(format_num(yr.hi).size(), ' ') << " |" << line << "|\n";
  }
  out << format_num(yr.lo) << " +" << std::string(w, '-') << "+\n";
  out << "   x: [" << format_num(xr.lo) << ", " << format_num(xr.hi) << "] "
      << options.x_label;
  if (!options.y_label.empty()) out << "   y: " << options.y_label;
  out << '\n';
  for (const auto& s : series) {
    out << "   '" << s.glyph << "' = " << s.name << " (" << s.xs.size()
        << " pts)\n";
  }
  return out.str();
}

std::string histogram_plot(std::span<const double> xs, std::size_t bins,
                           const PlotOptions& options) {
  if (xs.empty()) return "(empty histogram)\n";
  const double lo = min_of(xs);
  const double hi = max_of(xs);
  const auto counts = histogram(xs, lo, hi, bins);
  const std::size_t peak = *std::max_element(counts.begin(), counts.end());

  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';
  const double width = (hi - lo) / static_cast<double>(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    const double left = lo + width * static_cast<double>(b);
    const auto bar_len = static_cast<std::size_t>(
        peak == 0 ? 0
                  : static_cast<double>(counts[b]) /
                        static_cast<double>(peak) *
                        static_cast<double>(options.width));
    char label[64];
    std::snprintf(label, sizeof label, "%12s |", format_num(left).c_str());
    out << label << std::string(bar_len, '#') << ' ' << counts[b] << '\n';
  }
  out << "   " << options.x_label << '\n';
  return out.str();
}

}  // namespace flowgen::util
