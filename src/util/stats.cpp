#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace flowgen::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stdev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double min_of(std::span<const double> xs) {
  assert(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  assert(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

namespace {

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double quantile(std::span<const double> xs, double q) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

std::vector<double> quantiles(std::span<const double> xs,
                              std::span<const double> qs) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(quantile_sorted(copy, q));
  return out;
}

std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins) {
  assert(bins > 0);
  std::vector<std::size_t> counts(bins, 0);
  if (hi <= lo) {
    counts[0] = xs.size();
    return counts;
  }
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto idx = static_cast<std::ptrdiff_t>((x - lo) / width);
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                     static_cast<std::ptrdiff_t>(bins) - 1);
    ++counts[static_cast<std::size_t>(idx)];
  }
  return counts;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stdev = stdev(xs);
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  s.min = copy.front();
  s.max = copy.back();
  s.p5 = quantile_sorted(copy, 0.05);
  s.median = quantile_sorted(copy, 0.50);
  s.p95 = quantile_sorted(copy, 0.95);
  return s;
}

}  // namespace flowgen::util
