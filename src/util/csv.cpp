#include "util/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace flowgen::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), arity_(header.size()), out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(header[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<double> values) {
  if (values.size() != arity_) {
    throw std::runtime_error("CsvWriter: row arity mismatch in " + path_);
  }
  bool first = true;
  for (double v : values) {
    if (!first) out_ << ',';
    first = false;
    std::ostringstream ss;
    ss.precision(10);
    ss << v;
    out_ << ss.str();
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& values) {
  if (values.size() != arity_) {
    throw std::runtime_error("CsvWriter: row arity mismatch in " + path_);
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(values[i]);
  }
  out_ << '\n';
}

}  // namespace flowgen::util
