#pragma once
// Tiny CSV writer used by the benchmark harness to dump the series behind
// every reproduced figure (so results can be re-plotted outside the repo).

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace flowgen::util {

class CsvWriter {
public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// Append a data row; must match the header arity.
  void row(std::initializer_list<double> values);
  void row(const std::vector<std::string>& values);

  const std::string& path() const { return path_; }

private:
  std::string path_;
  std::size_t arity_;
  std::ofstream out_;
};

/// Quote a field per RFC 4180 if it contains separators/quotes.
std::string csv_escape(std::string_view field);

}  // namespace flowgen::util
