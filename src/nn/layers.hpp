#pragma once
// Layer interface plus the simple layers (Dense, Flatten, Activation,
// Dropout). Convolution, pooling and locally-connected layers live in their
// own files. All layers operate on batched tensors: rank-4 (N,H,W,C) for
// spatial layers, rank-2 (N,D) for dense layers.

#include <memory>
#include <string>
#include <vector>

#include "nn/activations.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace flowgen::nn {

class Layer {
public:
  virtual ~Layer() = default;

  /// Forward pass; `training` toggles dropout noise.
  virtual Tensor forward(const Tensor& input, bool training) = 0;
  /// Backward pass: gradient w.r.t. this layer's input, given gradient
  /// w.r.t. its output. Must be called after forward (layers cache state).
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters and their gradients (parallel vectors).
  virtual std::vector<Tensor*> params() { return {}; }
  virtual std::vector<Tensor*> grads() { return {}; }

  virtual std::string name() const = 0;
};

/// Fully connected layer: y = x W + b, x is (N, in), W is (in, out).
class Dense : public Layer {
public:
  Dense(std::size_t in_features, std::size_t out_features, util::Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> params() override { return {&weights_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&grad_weights_, &grad_bias_}; }
  std::string name() const override { return "Dense"; }

  const Tensor& weights() const { return weights_; }

private:
  std::size_t in_, out_;
  Tensor weights_, bias_, grad_weights_, grad_bias_;
  Tensor cached_input_;
};

/// Collapse (N, ...) to (N, D).
class Flatten : public Layer {
public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

private:
  std::vector<std::size_t> cached_shape_;
};

/// Elementwise activation (one of the paper's eight).
class Activation : public Layer {
public:
  explicit Activation(ActivationKind kind) : kind_(kind) {}

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override {
    return std::string("Activation:") + activation_name(kind_);
  }

private:
  ActivationKind kind_;
  Tensor cached_input_;
};

/// Inverted dropout with the paper's rate (0.4 in the dropout layer).
class Dropout : public Layer {
public:
  Dropout(double rate, util::Rng& rng) : rate_(rate), rng_(&rng) {}

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Dropout"; }

private:
  double rate_;
  util::Rng* rng_;
  Tensor mask_;
  bool last_training_ = false;
};

}  // namespace flowgen::nn
