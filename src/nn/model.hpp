#pragma once
// Sequential model container: owns layers, wires forward/backward, exposes
// a mini-batch training step (the paper trains with batch size 5).

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/optimizers.hpp"

namespace flowgen::nn {

class Sequential {
public:
  Sequential() = default;

  /// Append a layer; returns *this for chaining.
  Sequential& add(std::unique_ptr<Layer> layer);

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& input, bool training);

  /// One mini-batch SGD step: forward, loss, backward, optimizer update.
  /// Returns the batch loss.
  double train_batch(const Tensor& input,
                     const std::vector<std::uint32_t>& labels,
                     Optimizer& optimizer);

  /// Inference: class probabilities (N, C).
  Tensor predict_proba(const Tensor& input);

  /// Fraction of rows whose argmax matches the label.
  double evaluate_accuracy(const Tensor& input,
                           const std::vector<std::uint32_t>& labels);

  std::vector<Tensor*> params();
  std::vector<Tensor*> grads();
  std::size_t num_parameters();

  const std::vector<std::unique_ptr<Layer>>& layers() const {
    return layers_;
  }

private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Argmax of each row of a (N, C) tensor.
std::vector<std::uint32_t> argmax_rows(const Tensor& t);

}  // namespace flowgen::nn
