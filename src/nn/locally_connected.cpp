#include "nn/locally_connected.hpp"

#include <cassert>
#include <stdexcept>

namespace flowgen::nn {

LocallyConnected2D::LocallyConnected2D(std::size_t in_h, std::size_t in_w,
                                       std::size_t in_channels,
                                       std::size_t out_channels,
                                       std::size_t kernel_h,
                                       std::size_t kernel_w, util::Rng& rng)
    : in_h_(in_h),
      in_w_(in_w),
      in_ch_(in_channels),
      out_ch_(out_channels),
      kh_(kernel_h),
      kw_(kernel_w),
      oh_(in_h - kernel_h + 1),
      ow_(in_w - kernel_w + 1) {
  if (in_h < kernel_h || in_w < kernel_w) {
    throw std::invalid_argument("LocallyConnected2D: kernel exceeds input");
  }
  const std::size_t patch = kh_ * kw_ * in_ch_;
  weights_ = Tensor({oh_ * ow_, patch, out_ch_});
  grad_weights_ = Tensor({oh_ * ow_, patch, out_ch_});
  bias_ = Tensor({oh_ * ow_, out_ch_});
  grad_bias_ = Tensor({oh_ * ow_, out_ch_});
  weights_.glorot_init(rng, patch, out_ch_);
}

Tensor LocallyConnected2D::forward(const Tensor& input, bool /*training*/) {
  assert(input.rank() == 4 && input.dim(1) == in_h_ &&
         input.dim(2) == in_w_ && input.dim(3) == in_ch_);
  cached_input_ = input;
  const std::size_t n = input.dim(0);
  const std::size_t patch = kh_ * kw_ * in_ch_;

  Tensor out({n, oh_, ow_, out_ch_});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t oy = 0; oy < oh_; ++oy) {
      for (std::size_t ox = 0; ox < ow_; ++ox) {
        const std::size_t pos = oy * ow_ + ox;
        std::size_t p = 0;
        for (std::size_t ky = 0; ky < kh_; ++ky) {
          for (std::size_t kx = 0; kx < kw_; ++kx) {
            for (std::size_t ci = 0; ci < in_ch_; ++ci, ++p) {
              const double x = input.at(b, oy + ky, ox + kx, ci);
              if (x == 0.0) continue;
              for (std::size_t co = 0; co < out_ch_; ++co) {
                out.at(b, oy, ox, co) +=
                    x * weights_[(pos * patch + p) * out_ch_ + co];
              }
            }
          }
        }
        for (std::size_t co = 0; co < out_ch_; ++co) {
          out.at(b, oy, ox, co) += bias_[pos * out_ch_ + co];
        }
      }
    }
  }
  return out;
}

Tensor LocallyConnected2D::backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  const std::size_t n = input.dim(0);
  const std::size_t patch = kh_ * kw_ * in_ch_;

  grad_weights_.zero();
  grad_bias_.zero();
  Tensor grad_input(input.shape());

  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t oy = 0; oy < oh_; ++oy) {
      for (std::size_t ox = 0; ox < ow_; ++ox) {
        const std::size_t pos = oy * ow_ + ox;
        for (std::size_t co = 0; co < out_ch_; ++co) {
          const double go = grad_output.at(b, oy, ox, co);
          if (go == 0.0) continue;
          grad_bias_[pos * out_ch_ + co] += go;
          std::size_t p = 0;
          for (std::size_t ky = 0; ky < kh_; ++ky) {
            for (std::size_t kx = 0; kx < kw_; ++kx) {
              for (std::size_t ci = 0; ci < in_ch_; ++ci, ++p) {
                grad_weights_[(pos * patch + p) * out_ch_ + co] +=
                    input.at(b, oy + ky, ox + kx, ci) * go;
                grad_input.at(b, oy + ky, ox + kx, ci) +=
                    weights_[(pos * patch + p) * out_ch_ + co] * go;
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

}  // namespace flowgen::nn
