#include "nn/loss.hpp"

#include <cassert>
#include <cmath>

namespace flowgen::nn {

Tensor softmax(const Tensor& logits) {
  assert(logits.rank() == 2);
  const std::size_t n = logits.dim(0);
  const std::size_t c = logits.dim(1);
  Tensor probs({n, c});
  for (std::size_t i = 0; i < n; ++i) {
    double max_logit = logits.at(i, 0);
    for (std::size_t j = 1; j < c; ++j) {
      max_logit = std::max(max_logit, logits.at(i, j));
    }
    double denom = 0.0;
    for (std::size_t j = 0; j < c; ++j) {
      probs.at(i, j) = std::exp(logits.at(i, j) - max_logit);
      denom += probs.at(i, j);
    }
    for (std::size_t j = 0; j < c; ++j) probs.at(i, j) /= denom;
  }
  return probs;
}

LossResult sparse_softmax_cross_entropy(
    const Tensor& logits, const std::vector<std::uint32_t>& labels) {
  assert(logits.rank() == 2 && logits.dim(0) == labels.size());
  const std::size_t n = logits.dim(0);
  const std::size_t c = logits.dim(1);

  LossResult r;
  r.probabilities = softmax(logits);
  r.grad_logits = Tensor({n, c});

  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    assert(labels[i] < c);
    const double p = r.probabilities.at(i, labels[i]);
    r.loss -= std::log(std::max(p, 1e-300)) * inv_n;
    for (std::size_t j = 0; j < c; ++j) {
      const double indicator = (j == labels[i]) ? 1.0 : 0.0;
      r.grad_logits.at(i, j) =
          (r.probabilities.at(i, j) - indicator) * inv_n;
    }
  }
  return r;
}

}  // namespace flowgen::nn
