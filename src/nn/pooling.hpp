#pragma once
// Max pooling with configurable window and stride. The paper's architecture
// uses 2x2 windows with stride 1x1, so output size shrinks by window-1
// ('valid' semantics).

#include "nn/layers.hpp"

namespace flowgen::nn {

class MaxPool2D : public Layer {
public:
  MaxPool2D(std::size_t pool_h, std::size_t pool_w, std::size_t stride = 1);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2D"; }

private:
  std::size_t ph_, pw_, stride_;
  std::vector<std::size_t> argmax_;  ///< flat input index per output element
  std::vector<std::size_t> input_shape_;
};

}  // namespace flowgen::nn
