#pragma once
// Dense row-major tensor of doubles, rank <= 4. The NN stack is small (the
// paper's CNN sees 12x12 one-hot matrices), so clarity and testability win
// over vectorisation tricks.

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace flowgen::nn {

class Tensor {
public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);

  static Tensor zeros(std::vector<std::size_t> shape) {
    return Tensor(std::move(shape));
  }

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const { return shape_[i]; }
  std::size_t size() const { return data_.size(); }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  double& at(std::size_t i) { return data_[i]; }
  double& at(std::size_t i, std::size_t j) {
    assert(rank() == 2);
    return data_[i * shape_[1] + j];
  }
  double at(std::size_t i, std::size_t j) const {
    assert(rank() == 2);
    return data_[i * shape_[1] + j];
  }
  double& at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) {
    assert(rank() == 4);
    return data_[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
  }
  double at(std::size_t i, std::size_t j, std::size_t k,
            std::size_t l) const {
    assert(rank() == 4);
    return data_[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
  }

  void fill(double v);
  void zero() { fill(0.0); }

  /// Glorot/Xavier uniform initialisation given fan-in/fan-out.
  void glorot_init(util::Rng& rng, std::size_t fan_in, std::size_t fan_out);

  /// Reshape without copying; the total size must match.
  Tensor reshaped(std::vector<std::size_t> shape) const;

  /// Elementwise in-place helpers used by the optimizers.
  Tensor& operator+=(const Tensor& o);
  Tensor& operator*=(double s);

  std::string shape_string() const;

private:
  std::vector<std::size_t> shape_;
  std::vector<double> data_;
};

}  // namespace flowgen::nn
