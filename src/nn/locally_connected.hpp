#pragma once
// Locally connected 2-D layer (the "Local" block in the paper's Figure 3):
// like a convolution but with an independent kernel at every output
// position, 'valid' padding, stride 1. Weights are
// (OH*OW, KH*KW*C_in, C_out); bias is (OH*OW, C_out).

#include "nn/layers.hpp"

namespace flowgen::nn {

class LocallyConnected2D : public Layer {
public:
  /// Input spatial size must be fixed at construction (unshared weights).
  LocallyConnected2D(std::size_t in_h, std::size_t in_w,
                     std::size_t in_channels, std::size_t out_channels,
                     std::size_t kernel_h, std::size_t kernel_w,
                     util::Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> params() override { return {&weights_, &bias_}; }
  std::vector<Tensor*> grads() override {
    return {&grad_weights_, &grad_bias_};
  }
  std::string name() const override { return "LocallyConnected2D"; }

  std::size_t out_h() const { return oh_; }
  std::size_t out_w() const { return ow_; }

private:
  std::size_t in_h_, in_w_, in_ch_, out_ch_, kh_, kw_, oh_, ow_;
  Tensor weights_, bias_, grad_weights_, grad_bias_;
  Tensor cached_input_;
};

}  // namespace flowgen::nn
