#include "nn/pooling.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace flowgen::nn {

MaxPool2D::MaxPool2D(std::size_t pool_h, std::size_t pool_w,
                     std::size_t stride)
    : ph_(pool_h), pw_(pool_w), stride_(stride) {}

Tensor MaxPool2D::forward(const Tensor& input, bool /*training*/) {
  assert(input.rank() == 4);
  const std::size_t n = input.dim(0);
  const std::size_t h = input.dim(1);
  const std::size_t w = input.dim(2);
  const std::size_t c = input.dim(3);
  if (h < ph_ || w < pw_) {
    throw std::invalid_argument("MaxPool2D: window larger than input");
  }
  const std::size_t oh = (h - ph_) / stride_ + 1;
  const std::size_t ow = (w - pw_) / stride_ + 1;

  input_shape_ = input.shape();
  Tensor out({n, oh, ow, c});
  argmax_.assign(out.size(), 0);

  std::size_t out_idx = 0;
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        for (std::size_t ch = 0; ch < c; ++ch, ++out_idx) {
          double best = -std::numeric_limits<double>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t py = 0; py < ph_; ++py) {
            for (std::size_t px = 0; px < pw_; ++px) {
              const std::size_t iy = oy * stride_ + py;
              const std::size_t ix = ox * stride_ + px;
              const std::size_t idx = ((b * h + iy) * w + ix) * c + ch;
              if (input[idx] > best) {
                best = input[idx];
                best_idx = idx;
              }
            }
          }
          out[out_idx] = best;
          argmax_[out_idx] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  assert(grad_output.size() == argmax_.size());
  Tensor grad_input(input_shape_);
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    grad_input[argmax_[i]] += grad_output[i];
  }
  return grad_input;
}

}  // namespace flowgen::nn
