#include "nn/layers.hpp"

#include <cassert>

namespace flowgen::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features,
             util::Rng& rng)
    : in_(in_features),
      out_(out_features),
      weights_({in_features, out_features}),
      bias_({out_features}),
      grad_weights_({in_features, out_features}),
      grad_bias_({out_features}) {
  weights_.glorot_init(rng, in_features, out_features);
}

Tensor Dense::forward(const Tensor& input, bool /*training*/) {
  assert(input.rank() == 2 && input.dim(1) == in_);
  cached_input_ = input;
  const std::size_t n = input.dim(0);
  Tensor out({n, out_});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < in_; ++k) {
      const double x = input.at(i, k);
      if (x == 0.0) continue;  // one-hot inputs are mostly zero
      for (std::size_t j = 0; j < out_; ++j) {
        out.at(i, j) += x * weights_.at(k, j);
      }
    }
    for (std::size_t j = 0; j < out_; ++j) out.at(i, j) += bias_[j];
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  const std::size_t n = cached_input_.dim(0);
  assert(grad_output.rank() == 2 && grad_output.dim(0) == n &&
         grad_output.dim(1) == out_);
  grad_weights_.zero();
  grad_bias_.zero();
  Tensor grad_input({n, in_});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < out_; ++j) {
      const double go = grad_output.at(i, j);
      grad_bias_[j] += go;
      for (std::size_t k = 0; k < in_; ++k) {
        grad_weights_.at(k, j) += cached_input_.at(i, k) * go;
        grad_input.at(i, k) += weights_.at(k, j) * go;
      }
    }
  }
  return grad_input;
}

Tensor Flatten::forward(const Tensor& input, bool /*training*/) {
  cached_shape_ = input.shape();
  const std::size_t n = input.dim(0);
  return input.reshaped({n, input.size() / n});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(cached_shape_);
}

Tensor Activation::forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  Tensor out(input.shape());
  for (std::size_t i = 0; i < input.size(); ++i) {
    out[i] = activate(kind_, input[i]);
  }
  return out;
}

Tensor Activation::backward(const Tensor& grad_output) {
  assert(grad_output.size() == cached_input_.size());
  Tensor grad(cached_input_.shape());
  for (std::size_t i = 0; i < grad.size(); ++i) {
    grad[i] = grad_output[i] * activate_grad(kind_, cached_input_[i]);
  }
  return grad;
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  last_training_ = training;
  if (!training || rate_ <= 0.0) return input;
  mask_ = Tensor(input.shape());
  Tensor out(input.shape());
  const double keep = 1.0 - rate_;
  for (std::size_t i = 0; i < input.size(); ++i) {
    // Inverted dropout: scale at train time so inference needs no change.
    mask_[i] = rng_->chance(keep) ? 1.0 / keep : 0.0;
    out[i] = input[i] * mask_[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!last_training_ || rate_ <= 0.0) return grad_output;
  Tensor grad(grad_output.shape());
  for (std::size_t i = 0; i < grad.size(); ++i) {
    grad[i] = grad_output[i] * mask_[i];
  }
  return grad;
}

}  // namespace flowgen::nn
