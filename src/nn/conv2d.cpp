#include "nn/conv2d.hpp"

#include <cassert>

namespace flowgen::nn {

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_h, std::size_t kernel_w, util::Rng& rng,
               std::size_t stride)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kh_(kernel_h),
      kw_(kernel_w),
      stride_(stride),
      weights_({kernel_h, kernel_w, in_channels, out_channels}),
      bias_({out_channels}),
      grad_weights_({kernel_h, kernel_w, in_channels, out_channels}),
      grad_bias_({out_channels}) {
  weights_.glorot_init(rng, kernel_h * kernel_w * in_channels,
                       kernel_h * kernel_w * out_channels);
}

Tensor Conv2D::forward(const Tensor& input, bool /*training*/) {
  assert(input.rank() == 4 && input.dim(3) == in_ch_);
  cached_input_ = input;
  const std::size_t n = input.dim(0);
  const std::size_t h = input.dim(1);
  const std::size_t w = input.dim(2);
  const std::size_t oh = (h + stride_ - 1) / stride_;
  const std::size_t ow = (w + stride_ - 1) / stride_;
  // 'same' padding: centre the kernel; pad_top/left derived from kernel size.
  const std::ptrdiff_t pad_t = static_cast<std::ptrdiff_t>(kh_ - 1) / 2;
  const std::ptrdiff_t pad_l = static_cast<std::ptrdiff_t>(kw_ - 1) / 2;

  Tensor out({n, oh, ow, out_ch_});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        for (std::size_t ky = 0; ky < kh_; ++ky) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride_ + ky) - pad_t;
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
          for (std::size_t kx = 0; kx < kw_; ++kx) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride_ + kx) - pad_l;
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
            for (std::size_t ci = 0; ci < in_ch_; ++ci) {
              const double x =
                  input.at(b, static_cast<std::size_t>(iy),
                           static_cast<std::size_t>(ix), ci);
              if (x == 0.0) continue;
              for (std::size_t co = 0; co < out_ch_; ++co) {
                out.at(b, oy, ox, co) += x * weights_.at(ky, kx, ci, co);
              }
            }
          }
        }
        for (std::size_t co = 0; co < out_ch_; ++co) {
          out.at(b, oy, ox, co) += bias_[co];
        }
      }
    }
  }
  return out;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  const std::size_t n = input.dim(0);
  const std::size_t h = input.dim(1);
  const std::size_t w = input.dim(2);
  const std::size_t oh = grad_output.dim(1);
  const std::size_t ow = grad_output.dim(2);
  const std::ptrdiff_t pad_t = static_cast<std::ptrdiff_t>(kh_ - 1) / 2;
  const std::ptrdiff_t pad_l = static_cast<std::ptrdiff_t>(kw_ - 1) / 2;

  grad_weights_.zero();
  grad_bias_.zero();
  Tensor grad_input(input.shape());

  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        for (std::size_t co = 0; co < out_ch_; ++co) {
          const double go = grad_output.at(b, oy, ox, co);
          if (go == 0.0) continue;
          grad_bias_[co] += go;
          for (std::size_t ky = 0; ky < kh_; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * stride_ + ky) - pad_t;
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
            for (std::size_t kx = 0; kx < kw_; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * stride_ + kx) - pad_l;
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
              for (std::size_t ci = 0; ci < in_ch_; ++ci) {
                const auto uy = static_cast<std::size_t>(iy);
                const auto ux = static_cast<std::size_t>(ix);
                grad_weights_.at(ky, kx, ci, co) +=
                    input.at(b, uy, ux, ci) * go;
                grad_input.at(b, uy, ux, ci) +=
                    weights_.at(ky, kx, ci, co) * go;
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

}  // namespace flowgen::nn
