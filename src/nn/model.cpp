#include "nn/model.hpp"

#include <cassert>

namespace flowgen::nn {

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, training);
  return x;
}

double Sequential::train_batch(const Tensor& input,
                               const std::vector<std::uint32_t>& labels,
                               Optimizer& optimizer) {
  const Tensor logits = forward(input, /*training=*/true);
  LossResult loss = sparse_softmax_cross_entropy(logits, labels);
  Tensor grad = std::move(loss.grad_logits);
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->backward(grad);
  }
  optimizer.step(params(), grads());
  return loss.loss;
}

Tensor Sequential::predict_proba(const Tensor& input) {
  return softmax(forward(input, /*training=*/false));
}

double Sequential::evaluate_accuracy(const Tensor& input,
                                     const std::vector<std::uint32_t>& labels) {
  const Tensor logits = forward(input, /*training=*/false);
  const std::vector<std::uint32_t> pred = argmax_rows(logits);
  assert(pred.size() == labels.size());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == labels[i]) ++hits;
  }
  return labels.empty() ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(labels.size());
}

std::vector<Tensor*> Sequential::params() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Sequential::grads() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* g : layer->grads()) out.push_back(g);
  }
  return out;
}

std::size_t Sequential::num_parameters() {
  std::size_t n = 0;
  for (Tensor* p : params()) n += p->size();
  return n;
}

std::vector<std::uint32_t> argmax_rows(const Tensor& t) {
  assert(t.rank() == 2);
  std::vector<std::uint32_t> out(t.dim(0), 0);
  for (std::size_t i = 0; i < t.dim(0); ++i) {
    double best = t.at(i, 0);
    for (std::size_t j = 1; j < t.dim(1); ++j) {
      if (t.at(i, j) > best) {
        best = t.at(i, j);
        out[i] = static_cast<std::uint32_t>(j);
      }
    }
  }
  return out;
}

}  // namespace flowgen::nn
