#pragma once
// Sparse softmax cross-entropy, the loss the paper trains with: logits
// (N, C) against integer class labels, softmax folded into the gradient.

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace flowgen::nn {

struct LossResult {
  double loss = 0.0;       ///< mean cross-entropy over the batch
  Tensor grad_logits;      ///< d loss / d logits, (N, C)
  Tensor probabilities;    ///< softmax(logits), (N, C)
};

LossResult sparse_softmax_cross_entropy(const Tensor& logits,
                                        const std::vector<std::uint32_t>& labels);

/// Softmax probabilities only (inference path).
Tensor softmax(const Tensor& logits);

}  // namespace flowgen::nn
