#include "nn/optimizers.hpp"

#include <cmath>
#include <stdexcept>

namespace flowgen::nn {

namespace {

void ensure_state(std::vector<Tensor>& state,
                  const std::vector<Tensor*>& params) {
  if (state.size() == params.size()) return;
  state.clear();
  state.reserve(params.size());
  for (const Tensor* p : params) state.emplace_back(p->shape());
}

}  // namespace

void Sgd::step(const std::vector<Tensor*>& params,
               const std::vector<Tensor*>& grads) {
  for (std::size_t t = 0; t < params.size(); ++t) {
    Tensor& w = *params[t];
    const Tensor& g = *grads[t];
    for (std::size_t i = 0; i < w.size(); ++i) w[i] -= lr_ * g[i];
  }
}

void Momentum::step(const std::vector<Tensor*>& params,
                    const std::vector<Tensor*>& grads) {
  ensure_state(velocity_, params);
  for (std::size_t t = 0; t < params.size(); ++t) {
    Tensor& w = *params[t];
    const Tensor& g = *grads[t];
    Tensor& v = velocity_[t];
    for (std::size_t i = 0; i < w.size(); ++i) {
      v[i] = mu_ * v[i] + g[i];
      w[i] -= lr_ * v[i];
    }
  }
}

void AdaGrad::step(const std::vector<Tensor*>& params,
                   const std::vector<Tensor*>& grads) {
  ensure_state(accum_, params);
  for (std::size_t t = 0; t < params.size(); ++t) {
    Tensor& w = *params[t];
    const Tensor& g = *grads[t];
    Tensor& acc = accum_[t];
    for (std::size_t i = 0; i < w.size(); ++i) {
      acc[i] += g[i] * g[i];
      w[i] -= lr_ * g[i] / (std::sqrt(acc[i]) + eps_);
    }
  }
}

void RmsProp::step(const std::vector<Tensor*>& params,
                   const std::vector<Tensor*>& grads) {
  ensure_state(accum_, params);
  for (std::size_t t = 0; t < params.size(); ++t) {
    Tensor& w = *params[t];
    const Tensor& g = *grads[t];
    Tensor& acc = accum_[t];
    for (std::size_t i = 0; i < w.size(); ++i) {
      acc[i] = decay_ * acc[i] + (1.0 - decay_) * g[i] * g[i];
      w[i] -= lr_ * g[i] / std::sqrt(acc[i] + eps_);
    }
  }
}

void Ftrl::step(const std::vector<Tensor*>& params,
                const std::vector<Tensor*>& grads) {
  ensure_state(z_, params);
  ensure_state(n_, params);
  const double alpha = lr_;
  for (std::size_t t = 0; t < params.size(); ++t) {
    Tensor& w = *params[t];
    const Tensor& g = *grads[t];
    Tensor& z = z_[t];
    Tensor& n = n_[t];
    for (std::size_t i = 0; i < w.size(); ++i) {
      const double g2 = g[i] * g[i];
      const double sigma = (std::sqrt(n[i] + g2) - std::sqrt(n[i])) / alpha;
      z[i] += g[i] - sigma * w[i];
      n[i] += g2;
      if (std::abs(z[i]) <= l1_) {
        w[i] = 0.0;
      } else {
        const double sign_z = z[i] > 0 ? 1.0 : -1.0;
        w[i] = -(z[i] - sign_z * l1_) /
               ((beta_ + std::sqrt(n[i])) / alpha + l2_);
      }
    }
  }
}

std::unique_ptr<Optimizer> make_optimizer(const std::string& name,
                                          double learning_rate) {
  if (name == "SGD") return std::make_unique<Sgd>(learning_rate);
  if (name == "Momentum") return std::make_unique<Momentum>(learning_rate);
  if (name == "AdaGrad") return std::make_unique<AdaGrad>(learning_rate);
  if (name == "RMSProp") return std::make_unique<RmsProp>(learning_rate);
  if (name == "Ftrl") return std::make_unique<Ftrl>(learning_rate);
  throw std::invalid_argument("unknown optimizer: " + name);
}

std::vector<std::string> optimizer_names() {
  return {"SGD", "Momentum", "AdaGrad", "RMSProp", "Ftrl"};
}

}  // namespace flowgen::nn
