#pragma once
// 2-D convolution with 'same' zero padding and configurable stride (the
// paper uses stride 1x1 and rectangular n x 2n kernels — see Figure 6's
// kernel-size study). Input layout (N, H, W, C_in); weights
// (KH, KW, C_in, C_out).

#include "nn/layers.hpp"

namespace flowgen::nn {

class Conv2D : public Layer {
public:
  Conv2D(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel_h, std::size_t kernel_w, util::Rng& rng,
         std::size_t stride = 1);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> params() override { return {&weights_, &bias_}; }
  std::vector<Tensor*> grads() override {
    return {&grad_weights_, &grad_bias_};
  }
  std::string name() const override { return "Conv2D"; }

  std::size_t kernel_h() const { return kh_; }
  std::size_t kernel_w() const { return kw_; }

private:
  std::size_t in_ch_, out_ch_, kh_, kw_, stride_;
  Tensor weights_, bias_, grad_weights_, grad_bias_;
  Tensor cached_input_;
};

}  // namespace flowgen::nn
