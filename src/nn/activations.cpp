#include "nn/activations.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace flowgen::nn {

namespace {
// SELU constants from Klambauer et al., "Self-Normalizing Neural Networks".
constexpr double kSeluAlpha = 1.6732632423543772;
constexpr double kSeluScale = 1.0507009873554805;
}  // namespace

const char* activation_name(ActivationKind kind) {
  switch (kind) {
    case ActivationKind::kReLU: return "ReLU";
    case ActivationKind::kReLU6: return "ReLU6";
    case ActivationKind::kELU: return "ELU";
    case ActivationKind::kSELU: return "SELU";
    case ActivationKind::kSoftplus: return "Softplus";
    case ActivationKind::kSoftsign: return "Softsign";
    case ActivationKind::kSigmoid: return "Sigmoid";
    case ActivationKind::kTanh: return "Tanh";
  }
  return "?";
}

ActivationKind activation_by_index(std::size_t i) {
  switch (i) {
    case 0: return ActivationKind::kReLU;
    case 1: return ActivationKind::kReLU6;
    case 2: return ActivationKind::kELU;
    case 3: return ActivationKind::kSELU;
    case 4: return ActivationKind::kSoftplus;
    case 5: return ActivationKind::kSoftsign;
    case 6: return ActivationKind::kSigmoid;
    case 7: return ActivationKind::kTanh;
    default: throw std::invalid_argument("activation index out of range");
  }
}

ActivationKind activation_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kNumActivations; ++i) {
    if (name == activation_name(activation_by_index(i))) {
      return activation_by_index(i);
    }
  }
  throw std::invalid_argument("unknown activation: " + name);
}

double activate(ActivationKind kind, double x) {
  switch (kind) {
    case ActivationKind::kReLU:
      return x > 0 ? x : 0.0;
    case ActivationKind::kReLU6:
      return x < 0 ? 0.0 : (x > 6.0 ? 6.0 : x);
    case ActivationKind::kELU:
      return x > 0 ? x : std::expm1(x);
    case ActivationKind::kSELU:
      return kSeluScale * (x > 0 ? x : kSeluAlpha * std::expm1(x));
    case ActivationKind::kSoftplus:
      // log(1+e^x), stable for large x.
      return x > 30 ? x : std::log1p(std::exp(x));
    case ActivationKind::kSoftsign:
      return x / (1.0 + std::abs(x));
    case ActivationKind::kSigmoid:
      return 1.0 / (1.0 + std::exp(-x));
    case ActivationKind::kTanh:
      return std::tanh(x);
  }
  return 0.0;
}

double activate_grad(ActivationKind kind, double x) {
  switch (kind) {
    case ActivationKind::kReLU:
      return x > 0 ? 1.0 : 0.0;
    case ActivationKind::kReLU6:
      return (x > 0 && x < 6.0) ? 1.0 : 0.0;
    case ActivationKind::kELU:
      return x > 0 ? 1.0 : std::exp(x);
    case ActivationKind::kSELU:
      return kSeluScale * (x > 0 ? 1.0 : kSeluAlpha * std::exp(x));
    case ActivationKind::kSoftplus:
      return 1.0 / (1.0 + std::exp(-x));
    case ActivationKind::kSoftsign: {
      const double d = 1.0 + std::abs(x);
      return 1.0 / (d * d);
    }
    case ActivationKind::kSigmoid: {
      const double s = 1.0 / (1.0 + std::exp(-x));
      return s * (1.0 - s);
    }
    case ActivationKind::kTanh: {
      const double t = std::tanh(x);
      return 1.0 - t * t;
    }
  }
  return 0.0;
}

}  // namespace flowgen::nn
