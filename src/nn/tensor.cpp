#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace flowgen::nn {

Tensor::Tensor(std::vector<std::size_t> shape) : shape_(std::move(shape)) {
  std::size_t total = 1;
  for (std::size_t d : shape_) total *= d;
  data_.assign(total, 0.0);
}

void Tensor::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::glorot_init(util::Rng& rng, std::size_t fan_in,
                         std::size_t fan_out) {
  const double limit =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (double& v : data_) v = rng.uniform(-limit, limit);
}

Tensor Tensor::reshaped(std::vector<std::size_t> shape) const {
  std::size_t total = 1;
  for (std::size_t d : shape) total *= d;
  if (total != size()) {
    throw std::invalid_argument("Tensor::reshaped: size mismatch");
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = data_;
  return t;
}

Tensor& Tensor::operator+=(const Tensor& o) {
  if (o.size() != size()) {
    throw std::invalid_argument("Tensor::operator+=: size mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

std::string Tensor::shape_string() const {
  std::ostringstream ss;
  ss << '(';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) ss << ',';
    ss << shape_[i];
  }
  ss << ')';
  return ss.str();
}

}  // namespace flowgen::nn
