#pragma once
// The eight activation functions the paper compares in Figure 7, with
// analytic derivatives for backprop.

#include <string>

namespace flowgen::nn {

enum class ActivationKind {
  kReLU,
  kReLU6,
  kELU,
  kSELU,
  kSoftplus,
  kSoftsign,
  kSigmoid,
  kTanh,
};

/// All kinds, in the order Figure 7 lists them.
const char* activation_name(ActivationKind kind);
ActivationKind activation_from_name(const std::string& name);
constexpr std::size_t kNumActivations = 8;
ActivationKind activation_by_index(std::size_t i);

double activate(ActivationKind kind, double x);
/// Derivative d activate / dx evaluated at pre-activation x.
double activate_grad(ActivationKind kind, double x);

}  // namespace flowgen::nn
