#pragma once
// The five gradient-descent algorithms compared in the paper's Figures 4-5:
// SGD, Momentum, AdaGrad, RMSProp and FTRL(-proximal). Each keeps its own
// per-parameter state, allocated lazily on the first step.

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace flowgen::nn {

class Optimizer {
public:
  explicit Optimizer(double learning_rate) : lr_(learning_rate) {}
  virtual ~Optimizer() = default;

  /// Apply one update: params[i] -= f(grads[i]). The two vectors must stay
  /// parallel and stable across calls (state is indexed positionally).
  virtual void step(const std::vector<Tensor*>& params,
                    const std::vector<Tensor*>& grads) = 0;

  virtual std::string name() const = 0;
  double learning_rate() const { return lr_; }

protected:
  double lr_;
};

class Sgd : public Optimizer {
public:
  using Optimizer::Optimizer;
  void step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads) override;
  std::string name() const override { return "SGD"; }
};

class Momentum : public Optimizer {
public:
  explicit Momentum(double learning_rate, double momentum = 0.9)
      : Optimizer(learning_rate), mu_(momentum) {}
  void step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads) override;
  std::string name() const override { return "Momentum"; }

private:
  double mu_;
  std::vector<Tensor> velocity_;
};

class AdaGrad : public Optimizer {
public:
  explicit AdaGrad(double learning_rate, double epsilon = 1e-8)
      : Optimizer(learning_rate), eps_(epsilon) {}
  void step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads) override;
  std::string name() const override { return "AdaGrad"; }

private:
  double eps_;
  std::vector<Tensor> accum_;
};

class RmsProp : public Optimizer {
public:
  explicit RmsProp(double learning_rate, double decay = 0.9,
                   double epsilon = 1e-10)
      : Optimizer(learning_rate), decay_(decay), eps_(epsilon) {}
  void step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads) override;
  std::string name() const override { return "RMSProp"; }

private:
  double decay_, eps_;
  std::vector<Tensor> accum_;
};

/// FTRL-Proximal (McMahan et al., KDD'13) with L1/L2 regularisation.
class Ftrl : public Optimizer {
public:
  explicit Ftrl(double learning_rate, double beta = 1.0, double l1 = 0.0,
                double l2 = 0.0)
      : Optimizer(learning_rate), beta_(beta), l1_(l1), l2_(l2) {}
  void step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads) override;
  std::string name() const override { return "Ftrl"; }

private:
  double beta_, l1_, l2_;
  std::vector<Tensor> z_, n_;
};

/// Factory by the names used in the paper's plots:
/// SGD | Momentum | AdaGrad | RMSProp | Ftrl.
std::unique_ptr<Optimizer> make_optimizer(const std::string& name,
                                          double learning_rate);
/// All five names in figure order.
std::vector<std::string> optimizer_names();

}  // namespace flowgen::nn
