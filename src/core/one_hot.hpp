#pragma once
// One-hot flow representation of Section 3.2.1: a flow of length L over n
// transforms becomes an L-by-n binary matrix whose j-th row has a single 1
// in the column of the j-th transform. The paper reshapes 24x6 to 12x12 so
// two convolution layers fit.

#include <span>
#include <vector>

#include "core/flow.hpp"
#include "nn/tensor.hpp"

namespace flowgen::core {

/// (L, n) matrix of a single flow.
nn::Tensor one_hot_matrix(const Flow& flow, std::size_t num_transforms);

/// Registry form: the encoding width n is the registry size, so the
/// classifier input shape follows the alphabet (an 8-spec registry yields
/// (L, 8) rows with no caller arithmetic).
nn::Tensor one_hot_matrix(const Flow& flow,
                          const opt::TransformRegistry& registry);

/// Batch tensor (N, H, W, 1) where H*W = L*n; by default H = W = sqrt(L*n)
/// when square (the paper's 24x6 -> 12x12), else H = L, W = n.
nn::Tensor one_hot_batch(std::span<const Flow> flows,
                         std::size_t num_transforms, std::size_t height,
                         std::size_t width);

/// Registry form of the batch encoder (n = registry size).
nn::Tensor one_hot_batch(std::span<const Flow> flows,
                         const opt::TransformRegistry& registry,
                         std::size_t height, std::size_t width);

/// The paper's reshape rule: square if L*n is a perfect square, else (L, n).
void default_reshape(std::size_t length, std::size_t num_transforms,
                     std::size_t& height, std::size_t& width);

}  // namespace flowgen::core
