#include "core/qor_store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/crc32.hpp"
#include "util/log.hpp"

namespace flowgen::core {

namespace {

/// Process-wide store telemetry; several stores sum into one series.
struct StoreMetrics {
  telemetry::Counter& appends;
  telemetry::Counter& lookups;
  telemetry::Counter& hits;
  telemetry::Counter& records_loaded;
  telemetry::Histogram& load_ms;
};

StoreMetrics& store_metrics() {
  static StoreMetrics m{
      telemetry::counter("flowgen_qor_store_appends_total",
                         "Label records appended to the QoR store"),
      telemetry::counter("flowgen_qor_store_lookups_total",
                         "QoR store index lookups"),
      telemetry::counter("flowgen_qor_store_hits_total",
                         "QoR store index hits"),
      telemetry::counter("flowgen_qor_store_records_loaded_total",
                         "Label records loaded from .qorlog files"),
      telemetry::histogram("flowgen_qor_store_load_ms",
                           "Per-file .qorlog load+scan latency (ms)",
                           telemetry::default_ms_buckets()),
  };
  return m;
}

// On-disk layout (little-endian; docs/qor-store.md is the normative spec):
//   file header (8 bytes): u32 magic "FQOR", u8 version, u8 0, u16 0
//   v2 header only: u64 registry_fp[0], u64 registry_fp[1] (16 more bytes)
//   record:  u32 crc32(payload), u32 payload_len, payload
//   payload: u64 fp[0], u64 fp[1], u16 num_steps, steps bytes,
//            u64 bits(area_um2), u64 bits(delay_ps),
//            u64 num_cells, u64 num_inverters
// Version 1 carries no registry fingerprint and means "the paper alphabet";
// a store bound to the paper registry keeps writing v1 files bit for bit,
// so every pre-registry artifact stays valid and every new paper-registry
// file stays readable by old readers. Any other alphabet writes v2 headers.
constexpr std::uint32_t kStoreMagic = 0x46514F52;  // "FQOR"
constexpr std::uint8_t kStoreVersion = 1;
constexpr std::uint8_t kStoreVersionRegistry = 2;
constexpr std::size_t kFileHeaderBytes = 8;
constexpr std::size_t kRegistryHeaderBytes = kFileHeaderBytes + 16;
constexpr std::size_t kRecordHeaderBytes = 8;
/// A payload is 50 bytes + one per step and steps are capped at 64Ki, so
/// 1 MiB rejects corrupt lengths without bounding real records.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;

void put_u16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  put_u16(b, static_cast<std::uint16_t>(v));
  put_u16(b, static_cast<std::uint16_t>(v >> 16));
}

void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  put_u32(b, static_cast<std::uint32_t>(v));
  put_u32(b, static_cast<std::uint32_t>(v >> 32));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(get_u16(p)) |
         (static_cast<std::uint32_t>(get_u16(p + 2)) << 16);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

}  // namespace

QorStore::QorStore(QorStoreConfig config)
    : config_(std::move(config)),
      registry_(config_.registry ? config_.registry
                                 : opt::TransformRegistry::paper()) {
  namespace fs = std::filesystem;
  if (config_.dir.empty()) {
    throw QorStoreError("QorStore: empty store directory");
  }
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  if (ec) {
    throw QorStoreError("QorStore: cannot create '" + config_.dir +
                        "': " + ec.message());
  }
  if (config_.writer_name.empty()) {
    // Unique per process *and* per instance: several stores in one
    // process (e.g. two pipelines sharing a directory) must never share a
    // log file — one file, one writer is the whole multi-writer protocol.
    static std::atomic<unsigned> instance{0};
    config_.writer_name = "w" + std::to_string(::getpid()) + "-" +
                          std::to_string(instance.fetch_add(1));
  }
  writer_path_ = config_.dir + "/" + config_.writer_name + ".qorlog";

  // Load every log in deterministic (sorted) order; ours may be among them
  // when a writer name is reused across runs.
  std::vector<std::string> logs;
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    if (entry.path().extension() == ".qorlog") {
      logs.push_back(entry.path().string());
    }
  }
  std::sort(logs.begin(), logs.end());
  std::uint64_t own_valid_bytes = 0;
  for (const std::string& path : logs) {
    const std::uint64_t valid = load_file(path);
    if (path == writer_path_) own_valid_bytes = valid;
  }

  // O_APPEND as defense in depth: even a buggy second writer on this file
  // could then only interleave whole-ish records at the end, not overwrite
  // earlier ones. ftruncate (healing, below and in append) still works.
  fd_ = ::open(writer_path_.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw QorStoreError("QorStore: cannot open '" + writer_path_ +
                        "': " + std::strerror(errno));
  }
  // Heal our own log: drop any torn tail so the next reader never has to,
  // then position at the end. Foreign files are never modified.
  if (own_valid_bytes > 0) {
    if (::ftruncate(fd_, static_cast<off_t>(own_valid_bytes)) != 0 ||
        ::lseek(fd_, 0, SEEK_END) < 0) {
      throw QorStoreError("QorStore: cannot truncate '" + writer_path_ + "'");
    }
  } else {
    // Fresh (or unreadably corrupt) file: start it over with a header. The
    // paper registry writes the original v1 header (its files stay byte
    // identical to pre-registry stores); other alphabets stamp their
    // fingerprint into a v2 header.
    std::vector<std::uint8_t> header;
    put_u32(header, kStoreMagic);
    const bool paper = registry_->is_paper();
    header.push_back(paper ? kStoreVersion : kStoreVersionRegistry);
    header.push_back(0);
    put_u16(header, 0);
    if (!paper) {
      const opt::RegistryFingerprint& fp = registry_->fingerprint();
      put_u64(header, fp[0]);
      put_u64(header, fp[1]);
    }
    if (::ftruncate(fd_, 0) != 0 ||
        ::write(fd_, header.data(), header.size()) !=
            static_cast<ssize_t>(header.size())) {
      throw QorStoreError("QorStore: cannot initialise '" + writer_path_ +
                          "'");
    }
  }
}

QorStore::~QorStore() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t QorStore::load_file(const std::string& path) {
  telemetry::Span span("store", "load_qorlog");
  span.arg("path", path);
  const bool timed = telemetry::enabled();
  const std::uint64_t t0 = timed ? telemetry::trace_now_us() : 0;
  const std::size_t loaded_before = stats_.records_loaded;
  const auto finish = [&](std::uint64_t valid) {
    StoreMetrics& m = store_metrics();
    m.records_loaded.inc(stats_.records_loaded - loaded_before);
    if (timed) {
      m.load_ms.observe(
          static_cast<double>(telemetry::trace_now_us() - t0) / 1000.0);
    }
    return valid;
  };
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    util::log_warn("QorStore: cannot read ", path, " — skipped");
    return finish(0);
  }
  std::vector<std::uint8_t> data((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  if (data.size() < kFileHeaderBytes || get_u32(data.data()) != kStoreMagic ||
      (data[4] != kStoreVersion && data[4] != kStoreVersionRegistry)) {
    util::log_warn("QorStore: ", path, " has no valid header — skipped");
    stats_.tail_bytes_dropped += data.size();
    return finish(0);
  }
  // Alphabet check before any record is indexed: v1 files are keyed by the
  // paper registry by definition, v2 files carry their registry's
  // fingerprint. A mismatch means the directory mixes alphabets — the step
  // bytes of those records name different transforms — and loading them
  // would be silent label corruption, so it is a typed error, never a skip.
  opt::RegistryFingerprint file_registry = opt::paper_registry_fingerprint();
  std::size_t pos = kFileHeaderBytes;
  if (data[4] == kStoreVersionRegistry) {
    if (data.size() < kRegistryHeaderBytes) {
      util::log_warn("QorStore: ", path, " has a torn v2 header — skipped");
      stats_.tail_bytes_dropped += data.size();
      return finish(0);
    }
    file_registry[0] = get_u64(data.data() + kFileHeaderBytes);
    file_registry[1] = get_u64(data.data() + kFileHeaderBytes + 8);
    pos = kRegistryHeaderBytes;
  }
  if (file_registry != registry_->fingerprint()) {
    throw QorStoreError(
        "QorStore: '" + path + "' is keyed by registry " +
        opt::registry_fingerprint_hex(file_registry) +
        " but this store uses " +
        opt::registry_fingerprint_hex(registry_->fingerprint()) +
        " — refusing to mix alphabets in one directory");
  }
  ++stats_.files_loaded;
  while (true) {
    if (data.size() - pos < kRecordHeaderBytes) break;  // torn/EOF
    const std::uint32_t crc = get_u32(data.data() + pos);
    const std::uint32_t len = get_u32(data.data() + pos + 4);
    if (len > kMaxPayloadBytes || len > data.size() - pos - kRecordHeaderBytes)
      break;
    const std::uint8_t* payload = data.data() + pos + kRecordHeaderBytes;
    if (util::crc32({payload, len}) != crc) break;
    // CRC-valid: decode. A structurally short payload still stops the scan
    // (it cannot be a boundary confusion — CRC already matched — but a
    // foreign writer bug must not crash this process).
    if (len < 50) break;
    Key key;
    key.design[0] = get_u64(payload);
    key.design[1] = get_u64(payload + 8);
    const std::uint16_t num_steps = get_u16(payload + 16);
    if (len != 50u + num_steps) break;
    key.steps.reserve(num_steps);
    bool steps_valid = true;
    for (std::uint16_t i = 0; i < num_steps; ++i) {
      const opt::StepId s = payload[18 + i];
      // The file's registry fingerprint matched, so every step byte must
      // name one of its specs; an out-of-range id is corruption and stops
      // the scan like any other invalid record.
      if (s >= registry_->size()) {
        steps_valid = false;
        break;
      }
      key.steps.push_back(s);
    }
    if (!steps_valid) break;
    const std::uint8_t* q = payload + 18 + num_steps;
    map::QoR qor;
    qor.area_um2 = std::bit_cast<double>(get_u64(q));
    qor.delay_ps = std::bit_cast<double>(get_u64(q + 8));
    qor.num_cells = static_cast<std::size_t>(get_u64(q + 16));
    qor.num_inverters = static_cast<std::size_t>(get_u64(q + 24));
    // First record wins on duplicates; evaluation is pure, so any
    // conflicting duplicate means a corrupt store and the earliest record
    // is as good a pick as any.
    index_.emplace(std::move(key), qor);
    ++stats_.records_loaded;
    pos += kRecordHeaderBytes + len;
  }
  if (pos < data.size()) {
    stats_.tail_bytes_dropped += data.size() - pos;
    util::log_warn("QorStore: ", path, ": dropped ", data.size() - pos,
                   " byte(s) of torn tail at offset ", pos);
  }
  return finish(pos);
}

std::optional<map::QoR> QorStore::lookup(const aig::Fingerprint& design,
                                         StepsView steps) const {
  std::lock_guard lock(mutex_);
  ++stats_.lookups;
  store_metrics().lookups.inc();
  Key key{design, StepsKey(steps.begin(), steps.end())};
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  ++stats_.hits;
  store_metrics().hits.inc();
  return it->second;
}

bool QorStore::append(const aig::Fingerprint& design, StepsView steps,
                      const map::QoR& qor) {
  if (steps.size() > 0xFFFF) throw QorStoreError("flow too long for record");
  registry_->validate_steps(steps);  // no undefined step byte ever persists
  std::lock_guard lock(mutex_);
  Key key{design, StepsKey(steps.begin(), steps.end())};
  if (index_.contains(key)) return false;

  std::vector<std::uint8_t> payload;
  payload.reserve(50 + steps.size());
  put_u64(payload, design[0]);
  put_u64(payload, design[1]);
  put_u16(payload, static_cast<std::uint16_t>(steps.size()));
  payload.insert(payload.end(), steps.begin(), steps.end());
  put_u64(payload, std::bit_cast<std::uint64_t>(qor.area_um2));
  put_u64(payload, std::bit_cast<std::uint64_t>(qor.delay_ps));
  put_u64(payload, static_cast<std::uint64_t>(qor.num_cells));
  put_u64(payload, static_cast<std::uint64_t>(qor.num_inverters));

  std::vector<std::uint8_t> record;
  record.reserve(kRecordHeaderBytes + payload.size());
  put_u32(record, util::crc32(payload));
  put_u32(record, static_cast<std::uint32_t>(payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());

  // Normally one write syscall per record: a *crash* leaves at worst one
  // torn record at the tail, which reload detects (CRC) and truncates
  // away. A short write or error while the process lives is different —
  // later appends would land after the torn bytes and be unreachable past
  // the CRC stop on reload — so roll the file back to the record boundary
  // before giving up or retrying.
  const off_t start = ::lseek(fd_, 0, SEEK_END);
  std::size_t written = 0;
  while (written < record.size()) {
    const ssize_t n =
        ::write(fd_, record.data() + written, record.size() - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const int err = errno;
    if (start >= 0) ::ftruncate(fd_, start);  // drop the partial record
    throw QorStoreError("QorStore: write to '" + writer_path_ +
                        "' failed: " + std::strerror(err));
  }
  if (config_.fsync_each_append) ::fsync(fd_);
  index_.emplace(std::move(key), qor);
  ++stats_.appends;
  store_metrics().appends.inc();
  return true;
}

void QorStore::for_design(
    const aig::Fingerprint& design,
    const std::function<void(StepsView, const map::QoR&)>& fn) const {
  std::lock_guard lock(mutex_);
  for (const auto& [key, qor] : index_) {
    if (key.design == design) fn(StepsView(key.steps), qor);
  }
}

std::size_t QorStore::size() const {
  std::lock_guard lock(mutex_);
  return index_.size();
}

QorStoreStats QorStore::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void QorStore::flush() {
  std::lock_guard lock(mutex_);
  if (fd_ >= 0) ::fsync(fd_);
}

}  // namespace flowgen::core
