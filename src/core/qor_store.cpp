#include "core/qor_store.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/crc32.hpp"
#include "util/log.hpp"

namespace flowgen::core {

namespace {

/// Process-wide store telemetry; several stores sum into one series.
struct StoreMetrics {
  telemetry::Counter& appends;
  telemetry::Counter& lookups;
  telemetry::Counter& hits;
  telemetry::Counter& records_loaded;
  telemetry::Histogram& load_ms;
  telemetry::Counter& segment_records_loaded;
  telemetry::Counter& ingests;
  telemetry::Counter& compactions;
  telemetry::Histogram& compact_ms;
};

StoreMetrics& store_metrics() {
  static StoreMetrics m{
      telemetry::counter("flowgen_qor_store_appends_total",
                         "Label records appended to the QoR store"),
      telemetry::counter("flowgen_qor_store_lookups_total",
                         "QoR store index lookups"),
      telemetry::counter("flowgen_qor_store_hits_total",
                         "QoR store index hits"),
      telemetry::counter("flowgen_qor_store_records_loaded_total",
                         "Label records loaded from .qorlog files"),
      telemetry::histogram("flowgen_qor_store_load_ms",
                           "Per-file .qorlog load+scan latency (ms)",
                           telemetry::default_ms_buckets()),
      telemetry::counter("flowgen_qor_store_segment_records_loaded_total",
                         "Label records bulk-loaded from .qorseg segments"),
      telemetry::counter("flowgen_qor_store_ingests_total",
                         "Label records adopted from peers (kStoreAppend)"),
      telemetry::counter("flowgen_qor_store_compactions_total",
                         "Compaction passes committed"),
      telemetry::histogram("flowgen_qor_store_compact_ms",
                           "Compaction pass latency (ms)",
                           telemetry::default_ms_buckets()),
  };
  return m;
}

// On-disk layout (little-endian; docs/qor-store.md is the normative spec):
//
// Per-writer log (<writer>.qorlog):
//   file header (8 bytes): u32 magic "FQOR", u8 version, u8 0, u16 0
//   v2 header only: u64 registry_fp[0], u64 registry_fp[1] (16 more bytes)
//   record:  u32 crc32(payload), u32 payload_len, payload
//   payload: u64 fp[0], u64 fp[1], u16 num_steps, steps bytes,
//            u64 bits(area_um2), u64 bits(delay_ps),
//            u64 num_cells, u64 num_inverters
// Version 1 carries no registry fingerprint and means "the paper alphabet";
// a store bound to the paper registry keeps writing v1 files bit for bit,
// so every pre-registry artifact stays valid and every new paper-registry
// file stays readable by old readers. Any other alphabet writes v2 headers.
//
// Compacted segment (seg-<epoch>.qorseg):
//   header (40 bytes): u32 magic "FQSG", u8 version, u8 0, u16 0,
//                      u64 registry_fp[0], u64 registry_fp[1],
//                      u64 epoch, u64 record_count
//   entries: record_count payloads (exact .qorlog payload layout, no
//            per-record framing), sorted by (design fp, steps), deduped
//   offset table: record_count u32 file offsets, one per entry in order —
//            attach validates this table against the entry chain instead
//            of parsing every entry, and lookups binary-search through it
//   footer: u32 crc32 over every preceding byte
// Segments always stamp the registry fingerprint (the paper registry's
// included) — they are a new format with no pre-registry readers to honor.
//
// MANIFEST (committed by rename(MANIFEST.tmp, MANIFEST)):
//   header (8 bytes): u32 magic "FQMF", u8 version, u8 0, u16 0
//   u64 registry_fp[0], u64 registry_fp[1], u64 epoch
//   u32 num_segments, then per segment: u16 name_len, name bytes
//   u32 num_logs, then per log: u16 name_len, name bytes,
//                               u64 consumed_bytes
//   footer: u32 crc32 over every preceding byte
// `consumed_bytes` is the log prefix already folded into the segments; a
// reader scans each log from its watermark (records below it would only
// dedup). No MANIFEST means epoch 0: plain per-writer logs, fully
// backward compatible.
constexpr std::uint32_t kStoreMagic = 0x46514F52;    // "FQOR"
constexpr std::uint32_t kSegmentMagic = 0x46515347;  // "FQSG"
constexpr std::uint32_t kManifestMagic = 0x46514D46;  // "FQMF"
constexpr std::uint8_t kStoreVersion = 1;
constexpr std::uint8_t kStoreVersionRegistry = 2;
constexpr std::uint8_t kSegmentVersion = 1;
constexpr std::uint8_t kManifestVersion = 1;
constexpr std::size_t kFileHeaderBytes = 8;
constexpr std::size_t kRegistryHeaderBytes = kFileHeaderBytes + 16;
constexpr std::size_t kRecordHeaderBytes = 8;
constexpr std::size_t kSegmentHeaderBytes = 40;
constexpr std::size_t kEntryFixedBytes = 50;
/// A payload is 50 bytes + one per step and steps are capped at 64Ki, so
/// 1 MiB rejects corrupt lengths without bounding real records.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;

/// Internal: a manifest-listed segment file vanished mid-attach — a
/// concurrent compactor committed a newer manifest and deleted it. The
/// attach loop re-reads the manifest and retries; this never escapes.
struct SegmentMissing {};

void put_u16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  put_u16(b, static_cast<std::uint16_t>(v));
  put_u16(b, static_cast<std::uint16_t>(v >> 16));
}

void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  put_u32(b, static_cast<std::uint32_t>(v));
  put_u32(b, static_cast<std::uint32_t>(v >> 32));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(get_u16(p)) |
         (static_cast<std::uint32_t>(get_u16(p + 2)) << 16);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Whole-file read via one fstat-sized ::read (logs, MANIFEST). Returns
/// false when the file does not exist.
bool read_whole_file(const std::string& path,
                     std::vector<std::uint8_t>& out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return false;
  }
  out.resize(static_cast<std::size_t>(st.st_size));
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::read(fd, out.data() + done, out.size() - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  ::close(fd);
  out.resize(done);
  return true;
}

void write_file_or_throw(const std::string& path,
                         const std::vector<std::uint8_t>& bytes,
                         bool sync) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw QorStoreError("QorStore: cannot create '" + path +
                        "': " + std::strerror(errno));
  }
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    throw QorStoreError("QorStore: write to '" + path +
                        "' failed: " + std::strerror(err));
  }
  if (sync) ::fsync(fd);
  ::close(fd);
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

/// Three-way compare of the segment entry at `e` against (design, steps),
/// in segment sort order: design fingerprint, then steps lexicographic.
int compare_entry(const std::uint8_t* e, const aig::Fingerprint& design,
                  StepsView steps) {
  const std::uint64_t d0 = get_u64(e);
  if (d0 != design[0]) return d0 < design[0] ? -1 : 1;
  const std::uint64_t d1 = get_u64(e + 8);
  if (d1 != design[1]) return d1 < design[1] ? -1 : 1;
  const std::uint16_t n = get_u16(e + 16);
  const std::size_t common = std::min<std::size_t>(n, steps.size());
  if (common > 0) {
    const int c = std::memcmp(e + 18, steps.data(), common);
    if (c != 0) return c < 0 ? -1 : 1;
  }
  if (n != steps.size()) return n < steps.size() ? -1 : 1;
  return 0;
}

map::QoR decode_entry_qor(const std::uint8_t* e) {
  const std::uint8_t* q = e + 18 + get_u16(e + 16);
  map::QoR qor;
  qor.area_um2 = std::bit_cast<double>(get_u64(q));
  qor.delay_ps = std::bit_cast<double>(get_u64(q + 8));
  qor.num_cells = static_cast<std::size_t>(get_u64(q + 16));
  qor.num_inverters = static_cast<std::size_t>(get_u64(q + 24));
  return qor;
}

}  // namespace

QorStore::QorStore(QorStoreConfig config)
    : config_(std::move(config)),
      registry_(config_.registry ? config_.registry
                                 : opt::TransformRegistry::paper()) {
  namespace fs = std::filesystem;
  if (config_.dir.empty()) {
    throw QorStoreError("QorStore: empty store directory");
  }
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  if (ec) {
    throw QorStoreError("QorStore: cannot create '" + config_.dir +
                        "': " + ec.message());
  }
  if (config_.writer_name.empty()) {
    // Unique per process *and* per instance: several stores in one
    // process (e.g. two pipelines sharing a directory) must never share a
    // log file — one file, one writer is the whole multi-writer protocol.
    static std::atomic<unsigned> instance{0};
    config_.writer_name = "w" + std::to_string(::getpid()) + "-" +
                          std::to_string(instance.fetch_add(1));
  }
  writer_path_ = config_.dir + "/" + config_.writer_name + ".qorlog";

  // Manifest + segments first (the bulk of a mature store), then every log
  // past its watermark. A concurrent compactor may delete a listed segment
  // between our manifest read and the segment open; the new manifest is
  // already live then, so re-read and retry — bounded, since each retry
  // needs another full compaction to race us.
  std::optional<Manifest> manifest;
  for (int attempt = 0;; ++attempt) {
    segments_.clear();  // a failed attempt may have attached some already
    manifest = read_manifest();
    try {
      if (manifest) {
        for (const std::string& seg : manifest->segments) {
          load_segment(config_.dir + "/" + seg);
        }
        epoch_ = manifest->epoch;
      }
      break;
    } catch (const SegmentMissing&) {
      if (attempt >= 4) {
        throw QorStoreError(
            "QorStore: manifest in '" + config_.dir +
            "' names segments that keep vanishing — giving up");
      }
    }
  }
  std::map<std::string, std::uint64_t> watermarks;
  if (manifest) {
    for (const auto& [name, consumed] : manifest->logs) {
      watermarks[name] = consumed;
    }
  }

  // Load every log in deterministic (sorted) order; ours may be among them
  // when a writer name is reused across runs.
  std::vector<std::string> logs;
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    if (entry.path().extension() == ".qorlog") {
      logs.push_back(entry.path().string());
    }
  }
  std::sort(logs.begin(), logs.end());
  std::uint64_t own_valid_bytes = 0;
  std::uint64_t own_file_size = 0;
  for (const std::string& path : logs) {
    const std::string name = fs::path(path).filename().string();
    const auto wm = watermarks.find(name);
    std::uint64_t file_size = 0;
    const std::uint64_t valid = load_file(
        path, wm == watermarks.end() ? 0 : wm->second, &file_size);
    if (path == writer_path_) {
      own_valid_bytes = valid;
      own_file_size = file_size;
    }
  }

  // O_APPEND as defense in depth: even a buggy second writer on this file
  // could then only interleave whole-ish records at the end, not overwrite
  // earlier ones. ftruncate (healing, below and in append) still works.
  fd_ = ::open(writer_path_.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw QorStoreError("QorStore: cannot open '" + writer_path_ +
                        "': " + std::strerror(errno));
  }
  if (own_valid_bytes > 0) {
    // Heal our own log — but only when there is a torn tail to drop. A
    // clean attach must not write: re-truncating to the unchanged size
    // would still dirty the inode (mtime) on every startup. Foreign files
    // are never modified.
    if (own_valid_bytes < own_file_size) {
      if (::ftruncate(fd_, static_cast<off_t>(own_valid_bytes)) != 0) {
        throw QorStoreError("QorStore: cannot truncate '" + writer_path_ +
                            "'");
      }
      ++stats_.log_truncations;
    }
  } else {
    // Fresh (or unreadably corrupt) file: start it over with a header.
    write_fresh_header_locked();
  }
}

QorStore::~QorStore() {
  if (fd_ >= 0) ::close(fd_);
}

QorStore::SegmentBuffer::~SegmentBuffer() {
  if (!data) return;
  if (mapped) {
    ::munmap(data, mapped);
  } else {
    delete[] data;
  }
}

void QorStore::write_fresh_header_locked() {
  // The paper registry writes the original v1 header (its files stay byte
  // identical to pre-registry stores); other alphabets stamp their
  // fingerprint into a v2 header.
  std::vector<std::uint8_t> header;
  put_u32(header, kStoreMagic);
  const bool paper = registry_->is_paper();
  header.push_back(paper ? kStoreVersion : kStoreVersionRegistry);
  header.push_back(0);
  put_u16(header, 0);
  if (!paper) {
    const opt::RegistryFingerprint& fp = registry_->fingerprint();
    put_u64(header, fp[0]);
    put_u64(header, fp[1]);
  }
  if (::ftruncate(fd_, 0) != 0 ||
      ::write(fd_, header.data(), header.size()) !=
          static_cast<ssize_t>(header.size())) {
    throw QorStoreError("QorStore: cannot initialise '" + writer_path_ +
                        "'");
  }
}

std::uint64_t QorStore::load_file(const std::string& path,
                                  std::uint64_t start,
                                  std::uint64_t* file_size) {
  telemetry::Span span("store", "load_qorlog");
  span.arg("path", path);
  const bool timed = telemetry::enabled();
  const std::uint64_t t0 = timed ? telemetry::trace_now_us() : 0;
  const std::size_t loaded_before = stats_.records_loaded;
  const auto finish = [&](std::uint64_t valid) {
    StoreMetrics& m = store_metrics();
    m.records_loaded.inc(stats_.records_loaded - loaded_before);
    if (timed) {
      m.load_ms.observe(
          static_cast<double>(telemetry::trace_now_us() - t0) / 1000.0);
    }
    return valid;
  };
  // A log whose manifest watermark covers it exactly is fully folded into
  // the segments — stat it and move on instead of reading megabytes of
  // already-consumed records back in. (A *shorter* file was reset by its
  // owner; a *longer* one has a live tail; both take the read path below.)
  if (start >= kFileHeaderBytes) {
    struct stat st{};
    if (::stat(path.c_str(), &st) == 0 &&
        static_cast<std::uint64_t>(st.st_size) == start) {
      if (file_size) *file_size = start;
      ++stats_.files_loaded;
      return finish(start);
    }
  }
  std::vector<std::uint8_t> data;
  if (!read_whole_file(path, data)) {
    util::log_warn("QorStore: cannot read ", path, " — skipped");
    if (file_size) *file_size = 0;
    return finish(0);
  }
  if (file_size) *file_size = data.size();
  if (data.size() < kFileHeaderBytes || get_u32(data.data()) != kStoreMagic ||
      (data[4] != kStoreVersion && data[4] != kStoreVersionRegistry)) {
    util::log_warn("QorStore: ", path, " has no valid header — skipped");
    stats_.tail_bytes_dropped += data.size();
    return finish(0);
  }
  // Alphabet check before any record is indexed: v1 files are keyed by the
  // paper registry by definition, v2 files carry their registry's
  // fingerprint. A mismatch means the directory mixes alphabets — the step
  // bytes of those records name different transforms — and loading them
  // would be silent label corruption, so it is a typed error, never a skip.
  opt::RegistryFingerprint file_registry = opt::paper_registry_fingerprint();
  std::size_t pos = kFileHeaderBytes;
  if (data[4] == kStoreVersionRegistry) {
    if (data.size() < kRegistryHeaderBytes) {
      util::log_warn("QorStore: ", path, " has a torn v2 header — skipped");
      stats_.tail_bytes_dropped += data.size();
      return finish(0);
    }
    file_registry[0] = get_u64(data.data() + kFileHeaderBytes);
    file_registry[1] = get_u64(data.data() + kFileHeaderBytes + 8);
    pos = kRegistryHeaderBytes;
  }
  if (file_registry != registry_->fingerprint()) {
    throw QorStoreError(
        "QorStore: '" + path + "' is keyed by registry " +
        opt::registry_fingerprint_hex(file_registry) +
        " but this store uses " +
        opt::registry_fingerprint_hex(registry_->fingerprint()) +
        " — refusing to mix alphabets in one directory");
  }
  ++stats_.files_loaded;
  // Skip the manifest watermark: that prefix is already folded into a
  // segment (records below it would only dedup). A log *shorter* than its
  // watermark was reset by its owner after a compaction — its records
  // live in the segment — so scan the whole (usually empty) file instead.
  if (start > pos && start <= data.size()) pos = start;
  while (true) {
    if (data.size() - pos < kRecordHeaderBytes) break;  // torn/EOF
    const std::uint32_t crc = get_u32(data.data() + pos);
    const std::uint32_t len = get_u32(data.data() + pos + 4);
    if (len > kMaxPayloadBytes || len > data.size() - pos - kRecordHeaderBytes)
      break;
    const std::uint8_t* payload = data.data() + pos + kRecordHeaderBytes;
    if (util::crc32({payload, len}) != crc) break;
    // CRC-valid: decode. A structurally short payload still stops the scan
    // (it cannot be a boundary confusion — CRC already matched — but a
    // foreign writer bug must not crash this process).
    if (len < kEntryFixedBytes) break;
    aig::Fingerprint design;
    design[0] = get_u64(payload);
    design[1] = get_u64(payload + 8);
    const std::uint16_t num_steps = get_u16(payload + 16);
    if (len != kEntryFixedBytes + num_steps) break;
    bool steps_valid = true;
    for (std::uint16_t i = 0; i < num_steps; ++i) {
      // The file's registry fingerprint matched, so every step byte must
      // name one of its specs; an out-of-range id is corruption and stops
      // the scan like any other invalid record.
      if (payload[18 + i] >= registry_->size()) {
        steps_valid = false;
        break;
      }
    }
    if (!steps_valid) break;
    const std::uint8_t* q = payload + 18 + num_steps;
    map::QoR qor;
    qor.area_um2 = std::bit_cast<double>(get_u64(q));
    qor.delay_ps = std::bit_cast<double>(get_u64(q + 8));
    qor.num_cells = static_cast<std::size_t>(get_u64(q + 16));
    qor.num_inverters = static_cast<std::size_t>(get_u64(q + 24));
    // First record wins on duplicates; evaluation is pure, so any
    // conflicting duplicate means a corrupt store and the earliest record
    // is as good a pick as any. A record already in a segment (e.g. our
    // own pre-reset log re-read after a crash between manifest commit and
    // log reset) stays segment-resident — index and segments are disjoint.
    const StepsView steps(payload + 18, num_steps);
    if (!segment_find_locked(design, steps)) index_.insert(design, steps, qor);
    ++stats_.records_loaded;
    pos += kRecordHeaderBytes + len;
  }
  if (pos < data.size()) {
    stats_.tail_bytes_dropped += data.size() - pos;
    util::log_warn("QorStore: ", path, ": dropped ", data.size() - pos,
                   " byte(s) of torn tail at offset ", pos);
  }
  return finish(pos);
}

void QorStore::load_segment(const std::string& path) {
  telemetry::Span span("store", "load_segment");
  span.arg("path", path);
  // mmap, not read: no 60 MB copy, no page-fault fill, and siblings
  // attaching the same store share the page-cache pages. Segments are
  // written once and only ever *unlinked* (never truncated), and an
  // unlinked mapping stays valid, so the mapping cannot SIGBUS under a
  // concurrent compactor.
  Segment segment;
  {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw SegmentMissing{};
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      throw SegmentMissing{};
    }
    const std::size_t size = static_cast<std::size_t>(st.st_size);
    if (size < kSegmentHeaderBytes + 4) {
      ::close(fd);
      throw QorStoreError("QorStore: segment '" + path + "' is truncated");
    }
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED) {
      throw QorStoreError("QorStore: cannot map segment '" + path +
                          "': " + std::strerror(errno));
    }
    ::madvise(map, size, MADV_WILLNEED);
    segment.buf.data = static_cast<std::uint8_t*>(map);
    segment.buf.size = size;
    segment.buf.mapped = size;
  }
  const std::uint8_t* data = segment.data();
  const std::size_t size = segment.buf.size;
  // Whole-file CRC before any field is believed: a segment is written once
  // and never appended to, so *any* mismatch is corruption, not a torn
  // tail — typed error, never a silent partial load.
  const std::uint32_t want_crc = get_u32(data + size - 4);
  if (util::crc32({data, size - 4}) != want_crc) {
    throw QorStoreError("QorStore: segment '" + path +
                        "' fails its CRC — corrupt");
  }
  if (get_u32(data) != kSegmentMagic || data[4] != kSegmentVersion) {
    throw QorStoreError("QorStore: segment '" + path +
                        "' has an unknown header");
  }
  opt::RegistryFingerprint seg_registry;
  seg_registry[0] = get_u64(data + 8);
  seg_registry[1] = get_u64(data + 16);
  if (seg_registry != registry_->fingerprint()) {
    throw QorStoreError(
        "QorStore: segment '" + path + "' is keyed by registry " +
        opt::registry_fingerprint_hex(seg_registry) + " but this store uses " +
        opt::registry_fingerprint_hex(registry_->fingerprint()));
  }
  const std::uint64_t record_count = get_u64(data + 32);
  const std::size_t end = size - 4;
  // The file carries its own offset table (record_count u32s just before
  // the CRC footer). Attach validates that the table and the entry chain
  // agree — each offset continues exactly where the previous entry ended
  // and every entry fits before the table — but parses no entry bodies:
  // the CRC already vouches for the bytes, and the writer validated step
  // ids at append time. This is the whole reason attach stays O(file
  // read) at 10^6 records. The entries stay in the file's own sorted
  // layout; `offsets` makes them binary-searchable.
  if (record_count > (end - kSegmentHeaderBytes) / 4) {
    throw QorStoreError("QorStore: segment '" + path + "' is truncated");
  }
  const std::size_t table_start =
      end - static_cast<std::size_t>(record_count) * 4;
  segment.offsets.reserve(static_cast<std::size_t>(record_count));
  std::size_t expect = kSegmentHeaderBytes;
  for (std::uint64_t i = 0; i < record_count; ++i) {
    const std::uint32_t off = get_u32(data + table_start + i * 4);
    if (off != expect || off + kEntryFixedBytes > table_start) {
      throw QorStoreError("QorStore: segment '" + path +
                          "' offset table disagrees with its entries — "
                          "corrupt");
    }
    const std::uint16_t num_steps = get_u16(data + off + 16);
    if (off + kEntryFixedBytes + num_steps > table_start) {
      throw QorStoreError("QorStore: segment '" + path +
                          "' ends mid-entry — corrupt");
    }
    expect = off + kEntryFixedBytes + num_steps;
    segment.offsets.push_back(off);
  }
  if (expect != table_start) {
    throw QorStoreError("QorStore: segment '" + path +
                        "' carries bytes past its last entry — corrupt");
  }
  segments_.push_back(std::move(segment));
  ++stats_.segments_loaded;
  stats_.segment_records_loaded += static_cast<std::size_t>(record_count);
  store_metrics().segment_records_loaded.inc(record_count);
}

std::optional<QorStore::Manifest> QorStore::read_manifest() const {
  const std::string path = config_.dir + "/MANIFEST";
  std::vector<std::uint8_t> data;
  if (!read_whole_file(path, data)) return std::nullopt;
  // The manifest is rename-committed, so a torn one cannot exist; any
  // invalid byte is corruption of the store's root pointer — typed error.
  const auto corrupt = [&](const char* why) {
    return QorStoreError("QorStore: MANIFEST in '" + config_.dir + "' " +
                         why);
  };
  if (data.size() < 40 + 4) throw corrupt("is truncated");
  if (util::crc32({data.data(), data.size() - 4}) !=
      get_u32(data.data() + data.size() - 4)) {
    throw corrupt("fails its CRC — corrupt");
  }
  if (get_u32(data.data()) != kManifestMagic ||
      data[4] != kManifestVersion) {
    throw corrupt("has an unknown header");
  }
  opt::RegistryFingerprint fp{get_u64(data.data() + 8),
                              get_u64(data.data() + 16)};
  if (fp != registry_->fingerprint()) {
    throw QorStoreError(
        "QorStore: MANIFEST in '" + config_.dir + "' is keyed by registry " +
        opt::registry_fingerprint_hex(fp) + " but this store uses " +
        opt::registry_fingerprint_hex(registry_->fingerprint()) +
        " — refusing to mix alphabets in one directory");
  }
  Manifest m;
  m.epoch = get_u64(data.data() + 24);
  std::size_t pos = 32;
  const std::size_t end = data.size() - 4;
  const auto read_name = [&](std::string& out) {
    if (end - pos < 2) throw corrupt("ends mid-name");
    const std::uint16_t len = get_u16(data.data() + pos);
    pos += 2;
    if (end - pos < len) throw corrupt("ends mid-name");
    out.assign(reinterpret_cast<const char*>(data.data() + pos), len);
    pos += len;
    if (out.find('/') != std::string::npos) throw corrupt("names a path");
  };
  if (end - pos < 4) throw corrupt("ends mid-list");
  std::uint32_t num_segments = get_u32(data.data() + pos);
  pos += 4;
  for (std::uint32_t i = 0; i < num_segments; ++i) {
    std::string name;
    read_name(name);
    m.segments.push_back(std::move(name));
  }
  if (end - pos < 4) throw corrupt("ends mid-list");
  std::uint32_t num_logs = get_u32(data.data() + pos);
  pos += 4;
  for (std::uint32_t i = 0; i < num_logs; ++i) {
    std::string name;
    read_name(name);
    if (end - pos < 8) throw corrupt("ends mid-watermark");
    m.logs.emplace_back(std::move(name), get_u64(data.data() + pos));
    pos += 8;
  }
  if (pos != end) throw corrupt("carries bytes past its last entry");
  return m;
}

const std::uint8_t* QorStore::segment_find_locked(
    const aig::Fingerprint& design, StepsView steps) const {
  for (const Segment& s : segments_) {
    std::size_t lo = 0;
    std::size_t hi = s.offsets.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const std::uint8_t* e = s.data() + s.offsets[mid];
      if (compare_entry(e, design, steps) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < s.offsets.size()) {
      const std::uint8_t* e = s.data() + s.offsets[lo];
      if (compare_entry(e, design, steps) == 0) return e;
    }
  }
  return nullptr;
}

std::optional<map::QoR> QorStore::find_locked(const aig::Fingerprint& design,
                                              StepsView steps) const {
  // Live (log-resident) records probe the cuckoo index in O(1); compacted
  // records binary-search their segment. The two sets are kept disjoint,
  // so order is a fast-path choice, not a correctness one.
  if (const auto hit = index_.find(design, steps)) return hit;
  if (const std::uint8_t* e = segment_find_locked(design, steps)) {
    return decode_entry_qor(e);
  }
  return std::nullopt;
}

std::size_t QorStore::segment_records_locked() const {
  std::size_t n = 0;
  for (const Segment& s : segments_) n += s.offsets.size();
  return n;
}

std::optional<map::QoR> QorStore::lookup(const aig::Fingerprint& design,
                                         StepsView steps) const {
  std::lock_guard lock(mutex_);
  ++stats_.lookups;
  store_metrics().lookups.inc();
  const auto hit = find_locked(design, steps);
  if (!hit) return std::nullopt;
  ++stats_.hits;
  store_metrics().hits.inc();
  return hit;
}

bool QorStore::append_locked(const aig::Fingerprint& design, StepsView steps,
                             const map::QoR& qor) {
  if (find_locked(design, steps)) return false;

  std::vector<std::uint8_t> payload;
  payload.reserve(kEntryFixedBytes + steps.size());
  put_u64(payload, design[0]);
  put_u64(payload, design[1]);
  put_u16(payload, static_cast<std::uint16_t>(steps.size()));
  payload.insert(payload.end(), steps.begin(), steps.end());
  put_u64(payload, std::bit_cast<std::uint64_t>(qor.area_um2));
  put_u64(payload, std::bit_cast<std::uint64_t>(qor.delay_ps));
  put_u64(payload, static_cast<std::uint64_t>(qor.num_cells));
  put_u64(payload, static_cast<std::uint64_t>(qor.num_inverters));

  std::vector<std::uint8_t> record;
  record.reserve(kRecordHeaderBytes + payload.size());
  put_u32(record, util::crc32(payload));
  put_u32(record, static_cast<std::uint32_t>(payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());

  // Normally one write syscall per record: a *crash* leaves at worst one
  // torn record at the tail, which reload detects (CRC) and truncates
  // away. A short write or error while the process lives is different —
  // later appends would land after the torn bytes and be unreachable past
  // the CRC stop on reload — so roll the file back to the record boundary
  // before giving up or retrying.
  const off_t start = ::lseek(fd_, 0, SEEK_END);
  std::size_t written = 0;
  while (written < record.size()) {
    const ssize_t n =
        ::write(fd_, record.data() + written, record.size() - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const int err = errno;
    if (start >= 0) ::ftruncate(fd_, start);  // drop the partial record
    throw QorStoreError("QorStore: write to '" + writer_path_ +
                        "' failed: " + std::strerror(err));
  }
  if (config_.fsync_each_append) ::fsync(fd_);
  index_.insert(design, steps, qor);
  return true;
}

void QorStore::notify_listeners_locked(const aig::Fingerprint& design,
                                       StepsView steps,
                                       const map::QoR& qor) {
  for (std::size_t i = 0; i < listeners_.size();) {
    if (listeners_[i].second(design, steps, qor)) {
      ++i;
    } else {
      listeners_.erase(listeners_.begin() +
                       static_cast<std::ptrdiff_t>(i));
    }
  }
}

bool QorStore::append(const aig::Fingerprint& design, StepsView steps,
                      const map::QoR& qor) {
  // Chaos runs inject disk-full / I/O errors here; callers must treat a
  // failed append as "label not persisted", never "label wrong".
  FLOWGEN_FAILPOINT("store.append");
  if (steps.size() > 0xFFFF) throw QorStoreError("flow too long for record");
  registry_->validate_steps(steps);  // no undefined step byte ever persists
  std::lock_guard lock(mutex_);
  if (!append_locked(design, steps, qor)) return false;
  ++stats_.appends;
  store_metrics().appends.inc();
  notify_listeners_locked(design, steps, qor);
  return true;
}

bool QorStore::ingest(const aig::Fingerprint& design, StepsView steps,
                      const map::QoR& qor) {
  if (steps.size() > 0xFFFF) throw QorStoreError("flow too long for record");
  registry_->validate_steps(steps);
  std::lock_guard lock(mutex_);
  if (!append_locked(design, steps, qor)) return false;
  ++stats_.ingests;
  store_metrics().ingests.inc();
  return true;
}

std::uint64_t QorStore::subscribe(Listener listener) {
  std::lock_guard lock(mutex_);
  const std::uint64_t token = next_listener_token_++;
  listeners_.emplace_back(token, std::move(listener));
  return token;
}

void QorStore::unsubscribe(std::uint64_t token) {
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < listeners_.size(); ++i) {
    if (listeners_[i].first == token) {
      listeners_.erase(listeners_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

QorStore::CompactionResult QorStore::compact() {
  telemetry::Span span("store", "compact");
  const bool timed = telemetry::enabled();
  const std::uint64_t t0 = timed ? telemetry::trace_now_us() : 0;
  namespace fs = std::filesystem;
  CompactionResult result;

  // One compactor per directory: flock on a dedicated lock file. A busy
  // lock means a sibling is already folding this directory — nothing to
  // wait for, its pass covers our records too.
  const std::string lock_path = config_.dir + "/COMPACT.lock";
  const int lock_fd = ::open(lock_path.c_str(), O_RDWR | O_CREAT, 0644);
  if (lock_fd < 0) {
    throw QorStoreError("QorStore: cannot open '" + lock_path +
                        "': " + std::strerror(errno));
  }
  if (::flock(lock_fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(lock_fd);
    return result;
  }
  struct LockRelease {
    int fd;
    ~LockRelease() {
      ::flock(fd, LOCK_UN);
      ::close(fd);
    }
  } lock_release{lock_fd};

  std::lock_guard lock(mutex_);

  // Catch up with the directory as it is *now*, under the compaction
  // lock: adopt any segment a sibling committed since attach, then scan
  // every log past its watermark — the fold must cover records we did not
  // produce, and the new watermarks must equal exactly what the segment
  // will contain.
  std::optional<Manifest> disk = read_manifest();
  std::uint64_t base_epoch = epoch_;
  if (disk) {
    base_epoch = std::max(base_epoch, disk->epoch);
    if (disk->epoch > epoch_) {
      for (const std::string& seg : disk->segments) {
        try {
          load_segment(config_.dir + "/" + seg);
        } catch (const SegmentMissing&) {
          // Cannot happen while we hold the lock — only compactors delete.
          throw QorStoreError("QorStore: segment '" + seg +
                              "' vanished under the compaction lock");
        }
      }
      epoch_ = disk->epoch;
    }
  }
  std::map<std::string, std::uint64_t> watermarks;
  if (disk) {
    for (const auto& [name, consumed] : disk->logs) {
      watermarks[name] = consumed;
    }
  }
  std::error_code ec;
  std::vector<std::string> log_paths;
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    if (entry.path().extension() == ".qorlog") {
      log_paths.push_back(entry.path().string());
    }
  }
  std::sort(log_paths.begin(), log_paths.end());
  std::vector<std::pair<std::string, std::uint64_t>> new_logs;
  const std::string own_name = fs::path(writer_path_).filename().string();
  for (const std::string& path : log_paths) {
    const std::string name = fs::path(path).filename().string();
    const auto wm = watermarks.find(name);
    std::uint64_t file_size = 0;
    const std::uint64_t valid = load_file(
        path, wm == watermarks.end() ? 0 : wm->second, &file_size);
    // Our own log is reset to a bare header below, after the manifest
    // commit; the manifest therefore claims only that header for it. A
    // crash between commit and reset re-reads (and dedups) the old bytes
    // on the next attach — slower, never lossy.
    new_logs.emplace_back(
        name, name == own_name
                  ? (registry_->is_paper() ? kFileHeaderBytes
                                           : kRegistryHeaderBytes)
                  : valid);
  }
  result.logs_folded = new_logs.size();
  if (index_.size() + segment_records_locked() == 0) {
    return result;  // nothing to fold
  }

  // One sorted, deduped segment carrying every record we hold: the
  // attached segments plus the live index. Sorting makes the fold
  // deterministic — the same record set compacts to the same bytes no
  // matter which logs or segments carried it — and the post-sort unique
  // pass removes overlap (an adopted sibling segment typically contains
  // our own earlier appends, folded there from our log). Duplicate keys
  // always carry identical QoR (evaluation is pure), so which copy
  // survives is immaterial.
  struct Entry {
    aig::Fingerprint design;
    StepsView steps;
    map::QoR qor;
  };
  std::vector<Entry> entries;
  entries.reserve(index_.size() + segment_records_locked());
  for (const Segment& s : segments_) {
    for (const std::uint32_t off : s.offsets) {
      const std::uint8_t* e = s.data() + off;
      aig::Fingerprint design{get_u64(e), get_u64(e + 8)};
      entries.push_back(Entry{design, StepsView(e + 18, get_u16(e + 16)),
                              decode_entry_qor(e)});
    }
  }
  index_.for_each([&](const aig::Fingerprint& design, StepsView steps,
                      const map::QoR& qor) {
    entries.push_back(Entry{design, steps, qor});
  });
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.design != b.design) return a.design < b.design;
              return std::lexicographical_compare(
                  a.steps.begin(), a.steps.end(), b.steps.begin(),
                  b.steps.end());
            });
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](const Entry& a, const Entry& b) {
                              return a.design == b.design &&
                                     a.steps.size() == b.steps.size() &&
                                     std::equal(a.steps.begin(),
                                                a.steps.end(),
                                                b.steps.begin());
                            }),
                entries.end());
  const std::uint64_t new_epoch = base_epoch + 1;
  const std::string segment_name = "seg-" + hex16(new_epoch) + ".qorseg";
  std::vector<std::uint8_t> seg;
  seg.reserve(kSegmentHeaderBytes + entries.size() * 68 + 4);
  put_u32(seg, kSegmentMagic);
  seg.push_back(kSegmentVersion);
  seg.push_back(0);
  put_u16(seg, 0);
  const opt::RegistryFingerprint& fp = registry_->fingerprint();
  put_u64(seg, fp[0]);
  put_u64(seg, fp[1]);
  put_u64(seg, new_epoch);
  put_u64(seg, entries.size());
  std::vector<std::uint32_t> new_offsets;
  new_offsets.reserve(entries.size());
  for (const Entry& e : entries) {
    new_offsets.push_back(static_cast<std::uint32_t>(seg.size()));
    put_u64(seg, e.design[0]);
    put_u64(seg, e.design[1]);
    put_u16(seg, static_cast<std::uint16_t>(e.steps.size()));
    seg.insert(seg.end(), e.steps.begin(), e.steps.end());
    put_u64(seg, std::bit_cast<std::uint64_t>(e.qor.area_um2));
    put_u64(seg, std::bit_cast<std::uint64_t>(e.qor.delay_ps));
    put_u64(seg, static_cast<std::uint64_t>(e.qor.num_cells));
    put_u64(seg, static_cast<std::uint64_t>(e.qor.num_inverters));
  }
  // The offset table readers attach by: one u32 per entry, in order,
  // between the last entry and the CRC footer.
  for (const std::uint32_t off : new_offsets) put_u32(seg, off);
  put_u32(seg, util::crc32(seg));
  // The segment lands under its final name but is invisible until the
  // manifest names it; a crash from here on leaves at worst a stray file
  // the next compactor deletes.
  write_file_or_throw(config_.dir + "/" + segment_name, seg, true);
  sync_point("segment_written");

  std::vector<std::uint8_t> man;
  put_u32(man, kManifestMagic);
  man.push_back(kManifestVersion);
  man.push_back(0);
  put_u16(man, 0);
  put_u64(man, fp[0]);
  put_u64(man, fp[1]);
  put_u64(man, new_epoch);
  put_u32(man, 1);
  put_u16(man, static_cast<std::uint16_t>(segment_name.size()));
  man.insert(man.end(), segment_name.begin(), segment_name.end());
  put_u32(man, static_cast<std::uint32_t>(new_logs.size()));
  for (const auto& [name, consumed] : new_logs) {
    put_u16(man, static_cast<std::uint16_t>(name.size()));
    man.insert(man.end(), name.begin(), name.end());
    put_u64(man, consumed);
  }
  put_u32(man, util::crc32(man));
  const std::string tmp_path = config_.dir + "/MANIFEST.tmp";
  write_file_or_throw(tmp_path, man, true);
  sync_point("manifest_tmp");
  if (::rename(tmp_path.c_str(), (config_.dir + "/MANIFEST").c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp_path.c_str());
    ::unlink((config_.dir + "/" + segment_name).c_str());
    throw QorStoreError("QorStore: cannot commit MANIFEST in '" +
                        config_.dir + "': " + std::strerror(err));
  }
  fsync_dir(config_.dir);
  sync_point("manifest_committed");

  // The new manifest is the truth now; everything it does not name is
  // garbage. Only the lock holder deletes, so a reader that loaded the
  // *previous* manifest either finished already or retries on the new one.
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    if (entry.path().extension() == ".qorseg" &&
        entry.path().filename().string() != segment_name) {
      fs::remove(entry.path(), ec);
    }
  }
  // Reset our own log: its records live in the segment now. Foreign logs
  // are never touched — their owners reset them in their own passes.
  write_fresh_header_locked();
  sync_point("log_reset");

  // Collapse the in-memory view to match the directory: one segment (the
  // bytes we just wrote, entries still referenced nowhere) holding every
  // record, and an empty index for appends to come.
  const std::size_t record_count = entries.size();
  entries.clear();  // views into the old segments/arena die before they do
  Segment fresh;
  fresh.buf.data = new std::uint8_t[seg.size()];
  fresh.buf.size = seg.size();
  std::memcpy(fresh.buf.data, seg.data(), seg.size());
  fresh.offsets = std::move(new_offsets);
  segments_.clear();
  segments_.push_back(std::move(fresh));
  index_ = CuckooIndex();

  epoch_ = new_epoch;
  ++stats_.compactions;
  store_metrics().compactions.inc();
  if (timed) {
    store_metrics().compact_ms.observe(
        static_cast<double>(telemetry::trace_now_us() - t0) / 1000.0);
  }
  result.performed = true;
  result.epoch = new_epoch;
  result.records = record_count;
  return result;
}

void QorStore::for_design(
    const aig::Fingerprint& design,
    const std::function<void(StepsView, const map::QoR&)>& fn) const {
  std::lock_guard lock(mutex_);
  index_.for_design(design, fn);
  // Segment entries of one design are a contiguous sorted run; find its
  // start with the empty flow (the minimal key for the design) and walk.
  for (const Segment& s : segments_) {
    std::size_t lo = 0;
    std::size_t hi = s.offsets.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const std::uint8_t* e = s.data() + s.offsets[mid];
      if (compare_entry(e, design, StepsView{}) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    for (std::size_t i = lo; i < s.offsets.size(); ++i) {
      const std::uint8_t* e = s.data() + s.offsets[i];
      if (get_u64(e) != design[0] || get_u64(e + 8) != design[1]) break;
      fn(StepsView(e + 18, get_u16(e + 16)), decode_entry_qor(e));
    }
  }
}

std::size_t QorStore::size() const {
  std::lock_guard lock(mutex_);
  return index_.size() + segment_records_locked();
}

QorStoreStats QorStore::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

CuckooIndexStats QorStore::index_stats() const {
  std::lock_guard lock(mutex_);
  return index_.stats();
}

std::uint64_t QorStore::epoch() const {
  std::lock_guard lock(mutex_);
  return epoch_;
}

void QorStore::flush() {
  std::lock_guard lock(mutex_);
  if (fd_ >= 0) ::fsync(fd_);
}

}  // namespace flowgen::core
