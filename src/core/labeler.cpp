#include "core/labeler.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/stats.hpp"

namespace flowgen::core {

const char* objective_name(Objective o) {
  switch (o) {
    case Objective::kArea: return "area";
    case Objective::kDelay: return "delay";
    case Objective::kAreaDelay: return "area+delay";
  }
  return "?";
}

double metric_value(Objective o, const map::QoR& q) {
  switch (o) {
    case Objective::kArea: return q.area_um2;
    case Objective::kDelay: return q.delay_ps;
    case Objective::kAreaDelay:
      throw std::invalid_argument("metric_value: multi-metric objective");
  }
  return 0.0;
}

void Labeler::fit(std::span<const map::QoR> qors) {
  if (qors.empty()) {
    throw std::invalid_argument("Labeler::fit: empty QoR set");
  }
  std::vector<double> primary;
  std::vector<double> secondary;
  primary.reserve(qors.size());
  for (const map::QoR& q : qors) {
    if (config_.objective == Objective::kAreaDelay) {
      primary.push_back(q.area_um2);
      secondary.push_back(q.delay_ps);
    } else {
      primary.push_back(metric_value(config_.objective, q));
    }
  }
  dets_primary_ = util::quantiles(primary, config_.quantiles);
  if (config_.objective == Objective::kAreaDelay) {
    dets_secondary_ = util::quantiles(secondary, config_.quantiles);
  }
}

std::uint32_t Labeler::bucket(double value, std::span<const double> dets) {
  // Table 1: class 0 iff r <= x0; class i iff x_{i-1} < r <= x_i; class n
  // iff r > x_{n-1}.
  std::uint32_t c = 0;
  while (c < dets.size() && value > dets[c]) ++c;
  return c;
}

std::uint32_t Labeler::classify(const map::QoR& q) const {
  assert(fitted());
  if (config_.objective == Objective::kAreaDelay) {
    const std::uint32_t ca = bucket(q.area_um2, dets_primary_);
    const std::uint32_t cd = bucket(q.delay_ps, dets_secondary_);
    return std::max(ca, cd);
  }
  return bucket(metric_value(config_.objective, q), dets_primary_);
}

std::vector<std::uint32_t> Labeler::classify_all(
    std::span<const map::QoR> qors) const {
  std::vector<std::uint32_t> out;
  out.reserve(qors.size());
  for (const map::QoR& q : qors) out.push_back(classify(q));
  return out;
}

}  // namespace flowgen::core
