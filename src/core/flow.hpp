#pragma once
// A synthesis flow: an ordered sequence of transforms (Definition 1/2 of the
// paper). Flows hash and compare by value so sampling can enforce
// uniqueness.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "opt/transform.hpp"

namespace flowgen::core {

/// A flow prefix/key in its packed form: TransformKind is a uint8 enum, so
/// the step sequence itself is the byte encoding — no string materialised.
using StepsView = std::span<const opt::TransformKind>;
using StepsKey = std::vector<opt::TransformKind>;

/// FNV-1a over the packed steps; hashes any prefix without allocating.
/// Transparent so unordered containers keyed by StepsKey can be probed with
/// a borrowed StepsView (C++20 heterogeneous lookup).
struct StepsHash {
  using is_transparent = void;
  std::size_t operator()(StepsView s) const noexcept {
    std::uint64_t h = 1469598103934665603ull;
    for (opt::TransformKind t : s) {
      h = (h ^ static_cast<std::uint8_t>(t)) * 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
  std::size_t operator()(const StepsKey& v) const noexcept {
    return (*this)(StepsView(v));
  }
};

struct StepsEqual {
  using is_transparent = void;
  bool operator()(StepsView a, StepsView b) const noexcept {
    return a.size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin());
  }
  bool operator()(const StepsKey& a, const StepsKey& b) const noexcept {
    return a == b;
  }
  bool operator()(const StepsKey& a, StepsView b) const noexcept {
    return (*this)(StepsView(a), b);
  }
  bool operator()(StepsView a, const StepsKey& b) const noexcept {
    return (*this)(a, StepsView(b));
  }
};

struct Flow {
  std::vector<opt::TransformKind> steps;

  std::size_t length() const { return steps.size(); }
  bool operator==(const Flow&) const = default;

  /// Compact digit key ("203514...") for I/O and reports. Hot paths hash
  /// the packed `steps` directly (StepsHash) instead of materialising this.
  std::string key() const;
  /// Human-readable ABC-style script ("balance; rewrite -z; ...").
  std::string to_string() const;
  /// Full ABC script for cross-checking the flow with real ABC:
  /// "strash; <transforms...>; map" (note: our `restructure` corresponds
  /// to ABC's `resub`).
  std::string to_abc_script() const;

  static Flow from_key(const std::string& key);
};

struct FlowHash {
  std::size_t operator()(const Flow& f) const noexcept {
    return StepsHash{}(StepsView(f.steps));
  }
};

}  // namespace flowgen::core
