#pragma once
// A synthesis flow: an ordered sequence of transforms (Definition 1/2 of the
// paper). Flows hash and compare by value so sampling can enforce
// uniqueness.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "opt/transform.hpp"

namespace flowgen::core {

struct Flow {
  std::vector<opt::TransformKind> steps;

  std::size_t length() const { return steps.size(); }
  bool operator==(const Flow&) const = default;

  /// Compact digit key ("203514...") for hashing/caching.
  std::string key() const;
  /// Human-readable ABC-style script ("balance; rewrite -z; ...").
  std::string to_string() const;
  /// Full ABC script for cross-checking the flow with real ABC:
  /// "strash; <transforms...>; map" (note: our `restructure` corresponds
  /// to ABC's `resub`).
  std::string to_abc_script() const;

  static Flow from_key(const std::string& key);
};

struct FlowHash {
  std::size_t operator()(const Flow& f) const {
    return std::hash<std::string>{}(f.key());
  }
};

}  // namespace flowgen::core
