#pragma once
// A synthesis flow: an ordered sequence of transforms (Definition 1/2 of the
// paper), stored as packed registry step ids. Flows hash and compare by
// value so sampling can enforce uniqueness. A flow is meaningful only next
// to a TransformRegistry (which says what each id does); the paper registry
// is the default everywhere, under which ids 0..5 are the fixed alphabet
// the pre-registry code used — keys, hashes and packed bytes unchanged.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "opt/registry.hpp"

namespace flowgen::core {

/// A flow prefix/key in its packed form: one byte per step (the registry
/// StepId), so the step sequence itself is the byte encoding — no string
/// materialised.
using StepsView = std::span<const opt::StepId>;
using StepsKey = std::vector<opt::StepId>;

/// FNV-1a over the packed steps; hashes any prefix without allocating.
/// Transparent so unordered containers keyed by StepsKey can be probed with
/// a borrowed StepsView (C++20 heterogeneous lookup).
struct StepsHash {
  using is_transparent = void;
  std::size_t operator()(StepsView s) const noexcept {
    std::uint64_t h = 1469598103934665603ull;
    for (opt::StepId t : s) {
      h = (h ^ t) * 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
  std::size_t operator()(const StepsKey& v) const noexcept {
    return (*this)(StepsView(v));
  }
};

struct StepsEqual {
  using is_transparent = void;
  bool operator()(StepsView a, StepsView b) const noexcept {
    return a.size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin());
  }
  bool operator()(const StepsKey& a, const StepsKey& b) const noexcept {
    return a == b;
  }
  bool operator()(const StepsKey& a, StepsView b) const noexcept {
    return (*this)(StepsView(a), b);
  }
  bool operator()(StepsView a, const StepsKey& b) const noexcept {
    return (*this)(a, StepsView(b));
  }
};

struct Flow {
  StepsKey steps;

  std::size_t length() const { return steps.size(); }
  bool operator==(const Flow&) const = default;

  /// Compact text key for I/O and reports: one character per step, base-36
  /// ('0'-'9' then 'a'-'z'), identical to the old digit keys for registries
  /// of up to 10 transforms. Throws opt::RegistryError for ids >= 36 (the
  /// packed byte form has no such limit). Hot paths hash the packed `steps`
  /// directly (StepsHash) instead of materialising this.
  std::string key() const;
  /// Human-readable script over the registry's spec names
  /// ("balance; rewrite -z; ...").
  std::string to_string(const opt::TransformRegistry& registry =
                            *opt::TransformRegistry::paper()) const;
  /// Full ABC script for cross-checking the flow with real ABC:
  /// "strash; <transforms...>; map" (note: our `restructure` corresponds
  /// to ABC's `resub`).
  std::string to_abc_script(const opt::TransformRegistry& registry =
                                *opt::TransformRegistry::paper()) const;

  /// Parse a text key, validating every step against `registry` — an
  /// out-of-range or unparseable character is an opt::RegistryError, so a
  /// key can never smuggle a step the alphabet does not define.
  static Flow from_key(const std::string& key,
                       const opt::TransformRegistry& registry =
                           *opt::TransformRegistry::paper());
};

struct FlowHash {
  std::size_t operator()(const Flow& f) const noexcept {
    return StepsHash{}(StepsView(f.steps));
  }
};

}  // namespace flowgen::core
