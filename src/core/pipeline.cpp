#include "core/pipeline.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "aig/reader.hpp"
#include "core/qor_store.hpp"
#include "designs/registry.hpp"
#include "service/remote_evaluator.hpp"
#include "telemetry/trace.hpp"
#include "util/log.hpp"

namespace flowgen::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The config switch between in-process and distributed labeling. Loopback
/// workers are forked here, before the pipeline spawns any threads. A
/// configured qor_store_dir attaches the persistent label store to
/// whichever evaluator is built, so labeling runs resume across restarts.
/// The registry reaches every layer from here: evaluator dispatch, store
/// keys (QorStore refuses other alphabets) and the fleet handshake.
std::unique_ptr<FlowEvaluator> make_evaluator(
    aig::Aig design, const service::EvalServiceConfig& svc,
    std::shared_ptr<const opt::TransformRegistry> registry) {
  if (!registry) registry = opt::TransformRegistry::paper();
  std::shared_ptr<QorStore> store;
  if (!svc.qor_store_dir.empty()) {
    QorStoreConfig store_config;
    store_config.dir = svc.qor_store_dir;
    store_config.registry = registry;
    store = std::make_shared<QorStore>(std::move(store_config));
  }
  EvaluatorConfig evaluator_config;
  evaluator_config.registry = registry;
  service::CoordinatorConfig coordinator_config;
  coordinator_config.registry = registry;
  if (!svc.distributed()) {
    auto local = std::make_unique<SynthesisEvaluator>(
        std::move(design), map::CellLibrary::builtin(), map::MapperParams{},
        evaluator_config);
    if (store) local->attach_store(std::move(store));
    return local;
  }
  std::unique_ptr<service::RemoteEvaluator> remote;
  if (svc.design_id.empty()) {
    // Off-registry design: ship the netlist itself to every worker
    // (protocol v2 LoadDesign). The serialization embeds the content
    // fingerprint, so a worker can never silently evaluate a different
    // circuit than the one passed here.
    remote = !svc.worker_addresses.empty()
                 ? service::RemoteEvaluator::connect_netlist(
                       svc.worker_addresses, design, coordinator_config)
                 : service::RemoteEvaluator::loopback_netlist(
                       design, svc.loopback_workers, evaluator_config,
                       coordinator_config);
  } else {
    // Workers elaborate design_id from the registry; labeling the wrong
    // circuit must be a loud failure, not a silent one, so verify the id
    // reproduces the design the caller actually passed.
    if (designs::make_design(svc.design_id).fingerprint() !=
        design.fingerprint()) {
      throw std::invalid_argument(
          "PipelineConfig.service.design_id '" + svc.design_id +
          "' does not elaborate to the design passed to FlowGenPipeline");
    }
    remote = !svc.worker_addresses.empty()
                 ? service::RemoteEvaluator::connect(svc.worker_addresses,
                                                     svc.design_id,
                                                     coordinator_config)
                 : service::RemoteEvaluator::loopback(
                       svc.design_id, svc.loopback_workers, evaluator_config,
                       coordinator_config);
  }
  if (store) remote->attach_store(std::move(store));
  return remote;
}

/// Ingest for the file-only constructor; validates before any I/O.
aig::Aig load_design_file(const PipelineConfig& config) {
  if (config.design_file.empty()) {
    throw std::invalid_argument(
        "FlowGenPipeline: PipelineConfig::design_file is empty");
  }
  return aig::read_blif_file(config.design_file);
}

}  // namespace

FlowGenPipeline::FlowGenPipeline(PipelineConfig config)
    : FlowGenPipeline(load_design_file(config), config) {}

FlowGenPipeline::FlowGenPipeline(aig::Aig design, PipelineConfig config)
    : config_(std::move(config)),
      evaluator_(make_evaluator(std::move(design), config_.service,
                                config_.registry)),
      space_(config_.repetitions,
             config_.registry ? config_.registry
                              : opt::TransformRegistry::paper()),
      rng_(config_.seed) {
  // Derive the classifier geometry from the space; callers only choose the
  // architecture knobs (filters, kernel, activation).
  config_.classifier.flow_length = space_.length();
  config_.classifier.num_transforms = space_.num_transforms();
  config_.classifier.num_classes =
      static_cast<std::size_t>(config_.labeler.quantiles.size() + 1);
  config_.classifier.seed = config_.seed ^ 0x5DEECE66Dull;
}

PipelineResult FlowGenPipeline::run() {
  if (!config_.trace_file.empty() && !telemetry::tracing()) {
    telemetry::start_tracing(config_.trace_file);
  }
  const auto t0 = std::chrono::steady_clock::now();
  util::ThreadPool threads(config_.threads);
  PipelineResult result;
  result.baseline = evaluator_->baseline();

  // Sample the training flows and the prediction pool disjointly (the pool
  // stands in for the paper's "large number of untested sample flows").
  const std::vector<Flow> all = space_.sample_unique(
      config_.training_flows + config_.sample_flows, rng_);
  std::vector<Flow> training(all.begin(),
                             all.begin() + static_cast<std::ptrdiff_t>(
                                               config_.training_flows));
  std::vector<Flow> pool(all.begin() + static_cast<std::ptrdiff_t>(
                                           config_.training_flows),
                         all.end());

  Labeler labeler(config_.labeler);
  CnnFlowClassifier classifier(config_.classifier);
  std::unique_ptr<nn::Optimizer> optimizer =
      nn::make_optimizer(config_.optimizer, config_.learning_rate);

  std::size_t labeled = 0;
  std::size_t round = 0;
  while (labeled < training.size()) {
    const std::size_t target =
        labeled == 0
            ? std::min(training.size(), config_.initial_labeled)
            : std::min(training.size(), labeled + config_.retrain_every);

    // (1) Label the next slice of training flows by actual synthesis.
    RoundStats stats;
    telemetry::Span round_span("pipeline", "round");
    round_span.arg("round", static_cast<std::uint64_t>(round + 1));
    const auto t_syn = std::chrono::steady_clock::now();
    const std::span<const Flow> slice(training.data() + labeled,
                                      target - labeled);
    std::vector<map::QoR> qors;
    {
      telemetry::Span span("pipeline", "label");
      span.arg("flows", static_cast<std::uint64_t>(slice.size()));
      qors = evaluator_->evaluate_many(slice, &threads);
    }
    for (std::size_t i = 0; i < slice.size(); ++i) {
      result.labeled_flows.push_back(slice[i]);
      result.labeled_qor.push_back(qors[i]);
    }
    labeled = target;
    stats.synthesis_seconds = seconds_since(t_syn);

    // Class definitions drift as data accumulates (Section 3.1): refit.
    labeler.fit(result.labeled_qor);
    const std::vector<std::uint32_t> labels =
        labeler.classify_all(result.labeled_qor);

    // Hold out a slice for generalisation tracking.
    const std::size_t holdout =
        std::max<std::size_t>(1, static_cast<std::size_t>(
                                     static_cast<double>(labeled) *
                                     config_.holdout_fraction));
    const std::size_t train_n = labeled - holdout;

    // (2) Re-train on mini-batches of the labeled set (batch size 5).
    const auto t_train = std::chrono::steady_clock::now();
    double loss_sum = 0.0;
    {
      telemetry::Span train_span("pipeline", "train");
      train_span.arg("steps",
                     static_cast<std::uint64_t>(config_.steps_per_round));
      for (std::size_t step = 0; step < config_.steps_per_round; ++step) {
        std::vector<Flow> batch;
        std::vector<std::uint32_t> batch_labels;
        batch.reserve(config_.batch_size);
        for (std::size_t b = 0; b < config_.batch_size; ++b) {
          const std::size_t pick =
              static_cast<std::size_t>(rng_.below(train_n));
          batch.push_back(result.labeled_flows[pick]);
          batch_labels.push_back(labels[pick]);
        }
        loss_sum += classifier.train_batch(batch, batch_labels, *optimizer);
      }
    }
    stats.train_seconds = seconds_since(t_train);

    stats.round = ++round;
    stats.labeled = labeled;
    stats.mean_train_loss =
        config_.steps_per_round
            ? loss_sum / static_cast<double>(config_.steps_per_round)
            : 0.0;
    stats.holdout_accuracy = classifier.accuracy(
        std::span<const Flow>(result.labeled_flows.data() + train_n,
                              holdout),
        std::span<const std::uint32_t>(labels.data() + train_n, holdout));
    if (config_.probe_accuracy_each_round) {
      stats.paper_accuracy =
          probe_selection_accuracy(classifier, labeler, pool, *evaluator_,
                                   config_.num_angel, &threads,
                                   config_.prediction_chunk)
              .accuracy;
    }
    stats.elapsed_seconds = seconds_since(t0);
    util::log_info("pipeline round ", stats.round, ": labeled=", labeled,
                   " loss=", stats.mean_train_loss,
                   " holdout=", stats.holdout_accuracy,
                   " paper_acc=", stats.paper_accuracy);
    if (round_callback_) round_callback_(stats);
    result.history.push_back(stats);
  }

  // (3) Final prediction over the pool + angel/devil selection.
  const SelectionProbe final_probe = probe_selection_accuracy(
      classifier, labeler, pool, *evaluator_, config_.num_angel, &threads,
      config_.prediction_chunk);
  result.paper_accuracy = final_probe.accuracy;
  for (std::size_t i = 0; i < final_probe.angel.size(); ++i) {
    result.angel_flows.push_back(pool[final_probe.angel[i].index]);
    result.angel_qor.push_back(final_probe.angel_qor[i]);
  }
  for (std::size_t i = 0; i < final_probe.devil.size(); ++i) {
    result.devil_flows.push_back(pool[final_probe.devil[i].index]);
    result.devil_qor.push_back(final_probe.devil_qor[i]);
  }
  return result;
}

}  // namespace flowgen::core
