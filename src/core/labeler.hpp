#pragma once
// The Table-1 labeling model: QoR values are bucketed into num_classes
// classes by determinators placed at fixed quantiles of the labeled data
// ({5, 15, 40, 65, 90, 95}% in the paper, giving 7 classes). Classes are
// recomputed whenever new labeled flows arrive (the determinators drift as
// the dataset grows — Section 3.1). Lower class = better QoR; class 0 feeds
// angel-flows, class n feeds devil-flows.

#include <cstdint>
#include <span>
#include <vector>

#include "map/qor.hpp"

namespace flowgen::core {

/// Which QoR metric(s) drive the labels.
enum class Objective {
  kArea,       ///< single-metric: area
  kDelay,      ///< single-metric: delay
  kAreaDelay,  ///< multi-metric: both (Table 1 right column)
};

const char* objective_name(Objective o);
double metric_value(Objective o, const map::QoR& q);  // single-metric only

struct LabelerConfig {
  std::vector<double> quantiles = {0.05, 0.15, 0.40, 0.65, 0.90, 0.95};
  Objective objective = Objective::kDelay;
};

class Labeler {
public:
  explicit Labeler(LabelerConfig config) : config_(std::move(config)) {}

  /// Recompute determinators from the labeled QoR set.
  void fit(std::span<const map::QoR> qors);

  /// Number of classes = quantiles.size() + 1.
  std::uint32_t num_classes() const {
    return static_cast<std::uint32_t>(config_.quantiles.size() + 1);
  }

  /// Class of one result. For the multi-metric model a flow must satisfy
  /// both metric ranges; following the conservative reading of Table 1, the
  /// worse (higher) of the two per-metric classes is assigned.
  std::uint32_t classify(const map::QoR& q) const;
  std::vector<std::uint32_t> classify_all(std::span<const map::QoR> qors) const;

  const std::vector<double>& determinators() const { return dets_primary_; }
  const std::vector<double>& determinators_secondary() const {
    return dets_secondary_;
  }
  const LabelerConfig& config() const { return config_; }
  bool fitted() const { return !dets_primary_.empty(); }

private:
  static std::uint32_t bucket(double value, std::span<const double> dets);

  LabelerConfig config_;
  std::vector<double> dets_primary_;
  std::vector<double> dets_secondary_;  // delay dets for kAreaDelay
};

}  // namespace flowgen::core
