#pragma once
// Persistent labeled-QoR store: an append-only on-disk log of
// (design fingerprint, packed flow key) -> QoR records, so labeling runs
// survive process restarts and multiple coordinators can share one label
// set. The paper's framework spends ~95% of its wall-clock producing these
// labels; this store guarantees no (design, flow) pair is ever paid for
// twice, across restarts, machines and coordinators.
//
// Layout: a store is a *directory*; every writer appends to its own
// `<writer>.qorlog` file and loads every `*.qorlog` file at startup. One
// file has exactly one writer, which is what makes sharing safe without
// any locking protocol between processes. Records are CRC-32-stamped and
// the loader stops at the first invalid record (torn tail from a crash),
// truncating its own file there so the log heals. docs/qor-store.md is the
// normative format description.
//
// Thread-safety: all public methods are safe to call concurrently; one
// mutex serialises index and file access (appends are rare and small next
// to the synthesis work that produces them).

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "aig/aig.hpp"
#include "core/flow.hpp"
#include "map/qor.hpp"

namespace flowgen::core {

/// Raised when the store directory or the writer's own log file cannot be
/// created/opened/written. Unreadable *foreign* log files are skipped with
/// a warning instead — a sibling coordinator's crash must not take this
/// one down.
class QorStoreError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

struct QorStoreConfig {
  /// Store directory; created (with parents) when missing.
  std::string dir;
  /// Log-file stem this store appends to ("<dir>/<writer_name>.qorlog").
  /// Empty picks "w<pid>-<k>", unique per process *and* per store
  /// instance. Two live writers must not share a name; reusing a name
  /// across runs is fine and resumes that file.
  std::string writer_name;
  /// fsync after every append. Off, a crash can lose the last few records
  /// (the OS flushes eventually); recovery still reads everything flushed.
  bool fsync_each_append = false;
  /// The transform alphabet whose step ids this store's records are keyed
  /// by; null = the paper registry. Paper-registry stores write the
  /// original v1 file format byte for byte; any other alphabet stamps its
  /// fingerprint into a v2 header. Loading a directory that contains a log
  /// written under a *different* alphabet throws QorStoreError — labels
  /// must never silently change meaning.
  std::shared_ptr<const opt::TransformRegistry> registry;
};

struct QorStoreStats {
  std::size_t files_loaded = 0;    ///< *.qorlog files read at startup
  std::size_t records_loaded = 0;  ///< valid records across those files
  std::size_t tail_bytes_dropped = 0;  ///< bytes discarded at torn tails
  std::size_t appends = 0;         ///< records this process wrote
  std::size_t lookups = 0;
  std::size_t hits = 0;
};

class QorStore {
public:
  /// Open (creating if needed) the store at `config.dir` and load every
  /// `*.qorlog` into the in-memory index. Throws QorStoreError when the
  /// directory or the writer file cannot be set up.
  explicit QorStore(QorStoreConfig config);
  ~QorStore();

  QorStore(const QorStore&) = delete;
  QorStore& operator=(const QorStore&) = delete;

  /// QoR recorded for (design, flow), or nullopt. Never touches disk.
  std::optional<map::QoR> lookup(const aig::Fingerprint& design,
                                 StepsView steps) const;

  /// Record one label: appended to this writer's log (one write syscall,
  /// CRC-stamped) and indexed. Returns false without writing when the key
  /// is already present — evaluation is pure, so a duplicate carries no
  /// new information. Throws QorStoreError if the write fails.
  bool append(const aig::Fingerprint& design, StepsView steps,
              const map::QoR& qor);

  /// Invoke `fn(steps, qor)` for every stored record of `design` (order
  /// unspecified). Used to pre-warm evaluator QoR caches at startup.
  void for_design(const aig::Fingerprint& design,
                  const std::function<void(StepsView, const map::QoR&)>& fn)
      const;

  /// Total records indexed (loaded + appended, deduplicated).
  std::size_t size() const;
  QorStoreStats stats() const;

  /// fsync the writer's log file.
  void flush();

  /// Full path of the log file this process appends to.
  const std::string& writer_path() const { return writer_path_; }

  /// Fingerprint of the alphabet this store's records are keyed by.
  const opt::RegistryFingerprint& registry_fingerprint() const {
    return registry_->fingerprint();
  }
  const std::shared_ptr<const opt::TransformRegistry>& registry() const {
    return registry_;
  }

private:
  struct Key {
    aig::Fingerprint design;
    StepsKey steps;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return static_cast<std::size_t>(k.design[0] ^
                                      (k.design[1] * 0x9e3779b97f4a7c15ull) ^
                                      StepsHash{}(k.steps));
    }
  };

  /// Load one log file; returns bytes of valid data (header + records).
  /// Invalid tails are counted, not fatal.
  std::uint64_t load_file(const std::string& path);

  mutable std::mutex mutex_;
  QorStoreConfig config_;
  std::shared_ptr<const opt::TransformRegistry> registry_;
  std::string writer_path_;
  int fd_ = -1;
  std::unordered_map<Key, map::QoR, KeyHash> index_;
  mutable QorStoreStats stats_;  ///< lookups/hits tick under the mutex
};

}  // namespace flowgen::core
