#pragma once
// Persistent labeled-QoR store: a directory of per-writer append logs plus
// compacted, CRC-footered segment files. Log records are indexed in memory
// by a cuckoo hash over (design fingerprint, packed flow key); segment
// records stay in their sorted on-disk layout and answer lookups by binary
// search, so attach cost does not grow with catalogue size. Labeling runs
// survive
// process restarts and multiple coordinators share one label set. The
// paper's framework spends ~95% of its wall-clock producing these labels;
// this store guarantees no (design, flow) pair is ever paid for twice,
// across restarts, machines and coordinators.
//
// Layout: a store is a *directory*; every writer appends to its own
// `<writer>.qorlog` file and a `compact()` pass folds every log (and any
// previous segment) into one sorted `seg-<epoch>.qorseg` segment named by
// a binary MANIFEST, committed by atomic rename so readers see either the
// old view or the new one, never half of each. One log file has exactly
// one writer, which is what makes sharing safe without any locking
// protocol between writers; compactors serialise on a flock'd lock file.
// Records are CRC-32-stamped (per record in logs, whole-file in segments)
// and the log loader stops at the first invalid record (torn tail from a
// crash), truncating its own file there so the log heals — only when
// there actually is a torn tail; a clean attach performs no write.
// docs/qor-store.md is the normative format description.
//
// Thread-safety: all public methods are safe to call concurrently; one
// mutex serialises index and file access (appends are rare and small next
// to the synthesis work that produces them). Subscription listeners run
// under that mutex — see subscribe().

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "core/cuckoo_index.hpp"
#include "core/flow.hpp"
#include "map/qor.hpp"
#include "util/failpoint.hpp"

namespace flowgen::core {

/// Raised when the store directory or the writer's own log file cannot be
/// created/opened/written, or when shared state (a segment, the MANIFEST)
/// is corrupt — shared files are written once and never truncated, so
/// damage there is never a torn tail to heal but real corruption.
/// Unreadable *foreign* log files are skipped with a warning instead — a
/// sibling coordinator's crash must not take this one down.
class QorStoreError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

struct QorStoreConfig {
  /// Store directory; created (with parents) when missing.
  std::string dir;
  /// Log-file stem this store appends to ("<dir>/<writer_name>.qorlog").
  /// Empty picks "w<pid>-<k>", unique per process *and* per store
  /// instance. Two live writers must not share a name; reusing a name
  /// across runs is fine and resumes that file.
  std::string writer_name;
  /// fsync after every append. Off, a crash can lose the last few records
  /// (the OS flushes eventually); recovery still reads everything flushed.
  bool fsync_each_append = false;
  /// The transform alphabet whose step ids this store's records are keyed
  /// by; null = the paper registry. Paper-registry stores write the
  /// original v1 file format byte for byte; any other alphabet stamps its
  /// fingerprint into a v2 header. Loading a directory that contains a log
  /// written under a *different* alphabet throws QorStoreError — labels
  /// must never silently change meaning.
  std::shared_ptr<const opt::TransformRegistry> registry;
  /// Test-only: invoked at named sync points inside compact()
  /// ("segment_written", "manifest_tmp", "manifest_committed",
  /// "log_reset") so crash-injection tests can SIGKILL the process at a
  /// chosen instant. Null in production.
  std::function<void(const char*)> compaction_sync_hook;
};

struct QorStoreStats {
  std::size_t files_loaded = 0;    ///< *.qorlog files read at startup
  std::size_t records_loaded = 0;  ///< valid records across those files
  std::size_t tail_bytes_dropped = 0;  ///< bytes discarded at torn tails
  std::size_t appends = 0;         ///< records this process wrote
  std::size_t lookups = 0;
  std::size_t hits = 0;
  // -- segment/compaction era (appended; aggregate-init of the fields
  //    above stays source-compatible) --
  std::size_t segments_loaded = 0;  ///< .qorseg files read at attach
  std::size_t segment_records_loaded = 0;  ///< records bulk-loaded from them
  std::size_t log_truncations = 0;  ///< own-log torn tails healed
  std::size_t compactions = 0;      ///< compact() passes that committed
  std::size_t ingests = 0;          ///< records adopted via ingest()
};

class QorStore {
public:
  /// One compact() outcome. `performed == false` means another process
  /// held the compaction lock or there was nothing to fold — both benign.
  struct CompactionResult {
    bool performed = false;
    std::uint64_t epoch = 0;      ///< manifest epoch after the pass
    std::size_t records = 0;      ///< records in the segment written
    std::size_t logs_folded = 0;  ///< .qorlog files folded/watermarked
  };

  /// A subscription listener: called once per record appended by *this
  /// process* (append(), not ingest()), under the store mutex. Return
  /// false to cancel the subscription. Listeners must not call back into
  /// the store and should only hand the record off (encode + enqueue).
  using Listener = std::function<bool(
      const aig::Fingerprint&, StepsView, const map::QoR&)>;

  /// Open (creating if needed) the store at `config.dir`: read the
  /// MANIFEST when present, attach its segments, then scan every
  /// `*.qorlog` past its manifest watermark. Segment attach is CRC +
  /// structural validation plus an offset scan only — no per-record
  /// hashing — so it runs at I/O speed regardless of record count;
  /// segment-resident records answer lookups by binary search (the
  /// entries are sorted), while log records live in the cuckoo index.
  /// Throws QorStoreError when the directory or the writer file cannot
  /// be set up, or when a segment/manifest is corrupt.
  explicit QorStore(QorStoreConfig config);
  ~QorStore();

  QorStore(const QorStore&) = delete;
  QorStore& operator=(const QorStore&) = delete;

  /// QoR recorded for (design, flow), or nullopt. Never touches disk.
  std::optional<map::QoR> lookup(const aig::Fingerprint& design,
                                 StepsView steps) const;

  /// Record one label: appended to this writer's log (one write syscall,
  /// CRC-stamped), indexed, and announced to subscribers. Returns false
  /// without writing when the key is already present — evaluation is
  /// pure, so a duplicate carries no new information. Throws QorStoreError
  /// if the write fails.
  bool append(const aig::Fingerprint& design, StepsView steps,
              const map::QoR& qor);

  /// Adopt one label received from a peer (kStoreAppend): persisted to
  /// this writer's log and indexed like append(), but *not* announced to
  /// subscribers — only locally-produced records propagate, so a ring of
  /// subscribed stores cannot echo records forever. Returns false when the
  /// key is already present.
  bool ingest(const aig::Fingerprint& design, StepsView steps,
              const map::QoR& qor);

  /// Fold every log (and any previous segment) into one fresh sorted
  /// segment, commit a new MANIFEST (atomic rename), delete the stale
  /// segments and reset this writer's log. Serialised across processes by
  /// flock on `<dir>/COMPACT.lock` — a busy lock returns
  /// `performed == false` instead of blocking. Also adopts any foreign-log
  /// records appended since attach (the pre-fold rescan), so a compaction
  /// doubles as a sibling sync.
  CompactionResult compact();

  /// Register a listener for future append()s. The returned token cancels
  /// it via unsubscribe(); after unsubscribe() returns, the listener is
  /// guaranteed not to be running and never called again.
  std::uint64_t subscribe(Listener listener);
  void unsubscribe(std::uint64_t token);

  /// Invoke `fn(steps, qor)` for every stored record of `design` (order
  /// unspecified). Used to pre-warm evaluator QoR caches at startup.
  void for_design(const aig::Fingerprint& design,
                  const std::function<void(StepsView, const map::QoR&)>& fn)
      const;

  /// Total records held (segment-resident + indexed, deduplicated).
  std::size_t size() const;
  QorStoreStats stats() const;
  CuckooIndexStats index_stats() const;
  /// Manifest epoch this store last loaded or committed (0 = no manifest).
  std::uint64_t epoch() const;

  /// fsync the writer's log file.
  void flush();

  /// Full path of the log file this process appends to.
  const std::string& writer_path() const { return writer_path_; }

  /// The store directory (fleet siblings — QUARANTINE, COMPACT.lock —
  /// live next to the logs and segments).
  const std::string& dir() const { return config_.dir; }

  /// Fingerprint of the alphabet this store's records are keyed by.
  const opt::RegistryFingerprint& registry_fingerprint() const {
    return registry_->fingerprint();
  }
  const std::shared_ptr<const opt::TransformRegistry>& registry() const {
    return registry_;
  }

private:
  struct Manifest {
    std::uint64_t epoch = 0;
    std::vector<std::string> segments;  ///< basenames
    std::vector<std::pair<std::string, std::uint64_t>> logs;  ///< watermarks
  };

  /// Owning byte buffer for one attached segment: the mmap'd file on the
  /// attach path (no copy, no zero-fill; the pages are clean, evictable
  /// and shared across processes attaching the same store) or a heap copy
  /// for the segment compact() itself just wrote.
  struct SegmentBuffer {
    std::uint8_t* data = nullptr;
    std::size_t size = 0;
    std::size_t mapped = 0;  ///< bytes to munmap; 0 = delete[]
    SegmentBuffer() = default;
    SegmentBuffer(SegmentBuffer&& other) noexcept { swap(other); }
    SegmentBuffer& operator=(SegmentBuffer&& other) noexcept {
      swap(other);
      return *this;
    }
    SegmentBuffer(const SegmentBuffer&) = delete;
    SegmentBuffer& operator=(const SegmentBuffer&) = delete;
    ~SegmentBuffer();
    void swap(SegmentBuffer& other) noexcept {
      std::swap(data, other.data);
      std::swap(size, other.size);
      std::swap(mapped, other.mapped);
    }
  };

  /// One attached segment file, held verbatim: `buf` is the whole
  /// CRC-verified file, `offsets` the start of each (sorted) entry, read
  /// from the file's own offset table. Segments never build index
  /// entries — a lookup miss in the cuckoo index binary-searches them
  /// instead, which is what keeps attaching a 10^6-record catalogue at
  /// CRC speed.
  struct Segment {
    SegmentBuffer buf;
    std::vector<std::uint32_t> offsets;
    const std::uint8_t* data() const { return buf.data; }
  };

  /// Load one log file starting at `start` (manifest watermark or header);
  /// returns bytes of valid data and, via `file_size`, the bytes on disk.
  /// Invalid tails are counted, not fatal.
  std::uint64_t load_file(const std::string& path, std::uint64_t start,
                          std::uint64_t* file_size);
  /// Attach one segment; throws QorStoreError on any corruption.
  void load_segment(const std::string& path);
  /// Pointer to the segment entry for (design, steps), or null.
  const std::uint8_t* segment_find_locked(const aig::Fingerprint& design,
                                          StepsView steps) const;
  /// Index first, then every segment — the store-wide point lookup.
  std::optional<map::QoR> find_locked(const aig::Fingerprint& design,
                                      StepsView steps) const;
  std::size_t segment_records_locked() const;
  /// Parse `<dir>/MANIFEST`; nullopt when absent, throws when corrupt.
  std::optional<Manifest> read_manifest() const;
  bool append_locked(const aig::Fingerprint& design, StepsView steps,
                     const map::QoR& qor);
  void write_fresh_header_locked();
  void notify_listeners_locked(const aig::Fingerprint& design,
                               StepsView steps, const map::QoR& qor);
  /// Compaction sync points are failpoints first ("store.compact" keyed by
  /// the point name, so `store.compact=crash@key=manifest_tmp` kills the
  /// process at that instant) with the legacy in-process hook kept for
  /// tests that need same-process synchronisation rather than injection.
  void sync_point(const char* name) const {
    FLOWGEN_FAILPOINT_KEYED("store.compact", name);
    if (config_.compaction_sync_hook) config_.compaction_sync_hook(name);
  }

  mutable std::mutex mutex_;
  QorStoreConfig config_;
  std::shared_ptr<const opt::TransformRegistry> registry_;
  std::string writer_path_;
  int fd_ = -1;
  CuckooIndex index_;        ///< log-resident records (disjoint from segments)
  std::vector<Segment> segments_;  ///< compacted records, searched in order
  std::uint64_t epoch_ = 0;
  std::vector<std::pair<std::uint64_t, Listener>> listeners_;
  std::uint64_t next_listener_token_ = 1;
  mutable QorStoreStats stats_;  ///< lookups/hits tick under the mutex
};

}  // namespace flowgen::core
