#include "core/cuckoo_index.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace flowgen::core {

namespace {

// Arena entry layout — byte-identical to a .qorlog record payload and to a
// segment entry (docs/qor-store.md):
//   u64 design[0], u64 design[1], u16 num_steps, steps bytes,
//   u64 bits(area_um2), u64 bits(delay_ps), u64 num_cells, u64 num_inverters
constexpr std::size_t kEntryFixedBytes = 50;
constexpr std::size_t kStepsOffset = 18;

std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint16_t load_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

void store_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

map::QoR qor_at(const std::uint8_t* entry_bytes) {
  const std::uint16_t n = load_u16(entry_bytes + 16);
  const std::uint8_t* q = entry_bytes + kStepsOffset + n;
  map::QoR qor;
  qor.area_um2 = std::bit_cast<double>(load_u64(q));
  qor.delay_ps = std::bit_cast<double>(load_u64(q + 8));
  qor.num_cells = static_cast<std::size_t>(load_u64(q + 16));
  qor.num_inverters = static_cast<std::size_t>(load_u64(q + 24));
  return qor;
}

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

CuckooIndex::CuckooIndex(CuckooIndexConfig config) : config_(config) {
  buckets_ = round_up_pow2(std::max<std::size_t>(1, config_.initial_buckets));
  slots_.assign(buckets_ * kSlotsPerBucket, 0);
  stats_.buckets = buckets_;
}

std::uint64_t CuckooIndex::mix64(std::uint64_t x) {
  // splitmix64 finalizer: full avalanche, so bucket bits and tag bits of
  // one hash are effectively independent.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

std::uint64_t CuckooIndex::hash_key(const aig::Fingerprint& design,
                                    const std::uint8_t* steps,
                                    std::size_t n) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull ^ (n * 0xff51afd7ed558ccdull);
  h = mix64(h ^ design[0]);
  h = mix64(h ^ design[1]);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) h = mix64(h ^ load_u64(steps + i));
  std::uint64_t tail = 0;
  for (; i < n; ++i) tail = (tail << 8) | steps[i];
  return mix64(h ^ tail);
}

std::uint64_t CuckooIndex::hash_entry(std::uint64_t offset) const {
  const std::uint8_t* e = entry(offset);
  aig::Fingerprint design{load_u64(e), load_u64(e + 8)};
  const std::uint16_t n = load_u16(e + 16);
  return hash_key(design, e + kStepsOffset, n);
}

std::size_t CuckooIndex::bucket_of(std::uint64_t hash) const {
  return static_cast<std::size_t>(hash) & (buckets_ - 1);
}

std::size_t CuckooIndex::alt_bucket(std::size_t bucket,
                                    std::uint16_t tag) const {
  // Partial-key cuckoo: the alternate bucket is derivable from (bucket,
  // tag) alone, so kicking a resident never needs to re-hash its key. The
  // XOR makes the mapping an involution: alt(alt(b)) == b.
  const std::uint64_t scrambled = mix64(static_cast<std::uint64_t>(tag) +
                                        0x5bd1e9955bd1e995ull);
  return (bucket ^ static_cast<std::size_t>(scrambled)) & (buckets_ - 1);
}

bool CuckooIndex::entry_matches(std::uint64_t offset,
                                const aig::Fingerprint& design,
                                const std::uint8_t* steps,
                                std::size_t n) const {
  const std::uint8_t* e = entry(offset);
  if (load_u64(e) != design[0] || load_u64(e + 8) != design[1]) return false;
  if (load_u16(e + 16) != n) return false;
  return n == 0 || std::memcmp(e + kStepsOffset, steps, n) == 0;
}

bool CuckooIndex::place(std::uint64_t hash, std::uint64_t offset) {
  std::uint16_t tag = tag_of(hash);
  std::uint64_t slot_val = (static_cast<std::uint64_t>(tag) << 48) |
                           (offset + 1);
  std::size_t b = bucket_of(hash);
  // Free slot in either candidate bucket first — the common case.
  for (const std::size_t cand : {b, alt_bucket(b, tag)}) {
    for (std::size_t s = 0; s < kSlotsPerBucket; ++s) {
      if (slots_[cand * kSlotsPerBucket + s] == 0) {
        slots_[cand * kSlotsPerBucket + s] = slot_val;
        return true;
      }
    }
  }
  // Both full: displace residents along a bounded path, always moving the
  // displaced item to *its* alternate bucket.
  for (std::size_t kick = 0; kick < config_.max_kicks; ++kick) {
    const std::size_t victim = (kick + static_cast<std::size_t>(offset)) %
                               kSlotsPerBucket;
    std::swap(slot_val, slots_[b * kSlotsPerBucket + victim]);
    ++stats_.kicks;
    const std::uint16_t vtag = static_cast<std::uint16_t>(slot_val >> 48);
    b = alt_bucket(b, vtag);
    for (std::size_t s = 0; s < kSlotsPerBucket; ++s) {
      if (slots_[b * kSlotsPerBucket + s] == 0) {
        slots_[b * kSlotsPerBucket + s] = slot_val;
        return true;
      }
    }
    tag = vtag;
    offset = (slot_val & 0xFFFFFFFFFFFFull) - 1;
  }
  // Kick budget exhausted: the still-homeless item goes to the stash.
  stash_.push_back(StashEntry{hash_entry(offset), offset});
  ++stats_.stash_spills;
  return false;
}

void CuckooIndex::grow_and_rebuild() {
  bool done = false;
  while (!done) {
    buckets_ *= 2;
    ++stats_.rehashes;
    slots_.assign(buckets_ * kSlotsPerBucket, 0);
    stash_.clear();
    done = true;
    std::size_t pos = 0;
    while (pos < arena_.size()) {
      const std::uint16_t n = load_u16(arena_.data() + pos + 16);
      if (!place(hash_entry(pos), pos) &&
          stash_.size() > config_.stash_capacity) {
        done = false;  // still too tight — double again
        break;
      }
      pos += kEntryFixedBytes + n;
    }
  }
  stats_.buckets = buckets_;
  stats_.stash_entries = stash_.size();
}

bool CuckooIndex::insert(const aig::Fingerprint& design, StepsView steps,
                         const map::QoR& qor) {
  if (steps.size() > 0xFFFF) {
    throw std::length_error("CuckooIndex: flow too long for an entry");
  }
  if (find(design, steps)) return false;  // first record wins

  // Grow ahead of the feasibility cliff: 2-choice 4-slot cuckoo sustains
  // ~95%+ occupancy, but kick paths lengthen sharply past ~90%.
  if ((stats_.entries + 1) * 10 > buckets_ * kSlotsPerBucket * 9) {
    grow_and_rebuild();
  }

  const std::uint64_t offset = arena_.size();
  store_u64(arena_, design[0]);
  store_u64(arena_, design[1]);
  arena_.push_back(static_cast<std::uint8_t>(steps.size()));
  arena_.push_back(static_cast<std::uint8_t>(steps.size() >> 8));
  arena_.insert(arena_.end(), steps.begin(), steps.end());
  store_u64(arena_, std::bit_cast<std::uint64_t>(qor.area_um2));
  store_u64(arena_, std::bit_cast<std::uint64_t>(qor.delay_ps));
  store_u64(arena_, static_cast<std::uint64_t>(qor.num_cells));
  store_u64(arena_, static_cast<std::uint64_t>(qor.num_inverters));

  if (!place(hash_key(design, steps.data(), steps.size()), offset) &&
      stash_.size() > config_.stash_capacity) {
    grow_and_rebuild();
  }
  ++stats_.entries;
  stats_.arena_bytes = arena_.size();
  stats_.stash_entries = stash_.size();
  return true;
}

std::optional<map::QoR> CuckooIndex::find(const aig::Fingerprint& design,
                                          StepsView steps) const {
  const std::uint64_t hash = hash_key(design, steps.data(), steps.size());
  const std::uint16_t tag = tag_of(hash);
  const std::uint64_t want_tag = static_cast<std::uint64_t>(tag) << 48;
  const std::size_t b1 = bucket_of(hash);
  for (const std::size_t b : {b1, alt_bucket(b1, tag)}) {
    for (std::size_t s = 0; s < kSlotsPerBucket; ++s) {
      const std::uint64_t v = slots_[b * kSlotsPerBucket + s];
      if (v == 0 || (v & 0xFFFF000000000000ull) != want_tag) continue;
      const std::uint64_t offset = (v & 0xFFFFFFFFFFFFull) - 1;
      if (entry_matches(offset, design, steps.data(), steps.size())) {
        return qor_at(entry(offset));
      }
    }
  }
  for (const StashEntry& se : stash_) {
    if (se.hash == hash &&
        entry_matches(se.offset, design, steps.data(), steps.size())) {
      return qor_at(entry(se.offset));
    }
  }
  return std::nullopt;
}

void CuckooIndex::for_design(
    const aig::Fingerprint& design,
    const std::function<void(StepsView, const map::QoR&)>& fn) const {
  std::size_t pos = 0;
  while (pos < arena_.size()) {
    const std::uint8_t* e = arena_.data() + pos;
    const std::uint16_t n = load_u16(e + 16);
    if (load_u64(e) == design[0] && load_u64(e + 8) == design[1]) {
      fn(StepsView(e + kStepsOffset, n), qor_at(e));
    }
    pos += kEntryFixedBytes + n;
  }
}

void CuckooIndex::for_each(
    const std::function<void(const aig::Fingerprint&, StepsView,
                             const map::QoR&)>& fn) const {
  std::size_t pos = 0;
  while (pos < arena_.size()) {
    const std::uint8_t* e = arena_.data() + pos;
    const std::uint16_t n = load_u16(e + 16);
    const aig::Fingerprint design{load_u64(e), load_u64(e + 8)};
    fn(design, StepsView(e + kStepsOffset, n), qor_at(e));
    pos += kEntryFixedBytes + n;
  }
}

void CuckooIndex::reserve(std::size_t n, std::size_t bytes_per_entry) {
  arena_.reserve(arena_.size() + n * bytes_per_entry);
  const std::size_t want =
      round_up_pow2((stats_.entries + n) / (kSlotsPerBucket - 1) + 1);
  while (buckets_ < want) grow_and_rebuild();
}

CuckooIndexStats CuckooIndex::stats() const {
  CuckooIndexStats s = stats_;
  s.buckets = buckets_;
  s.stash_entries = stash_.size();
  s.arena_bytes = arena_.size();
  return s;
}

}  // namespace flowgen::core
