#pragma once
// The evaluation seam of the framework: everything downstream of component
// (1) — labeling, selection probes, the pipeline — consumes flow QoRs
// through this interface and never cares *where* synthesis ran. Two
// implementations exist:
//
//  * core::SynthesisEvaluator — in-process, the prefix-sharing engine,
//  * service::RemoteEvaluator — a client that shards batches across
//    evald worker processes over unix/tcp sockets.
//
// Both are exact (synthesis and mapping are pure functions of the design
// and the step sequence), so callers may switch between them freely and
// expect bit-identical QoR.

#include <span>
#include <vector>

#include "core/flow.hpp"
#include "map/qor.hpp"
#include "util/thread_pool.hpp"

namespace flowgen::core {

/// Abstract producer of flow QoRs. Contract for every implementation:
/// evaluation is deterministic and *pure* — the result depends only on
/// (design, steps) — so repeated calls, any batch decomposition, and any
/// implementation swap yield bit-identical QoR. Implementations are
/// thread-safe for concurrent calls through this interface, and report
/// failure by throwing (std::exception subtypes; e.g. ServiceError when a
/// remote fleet cannot complete a batch) — never by returning partial or
/// default results.
class FlowEvaluator {
public:
  virtual ~FlowEvaluator() = default;

  /// Synthesize + map one flow and report its QoR. Deterministic; throws
  /// on evaluation failure.
  virtual map::QoR evaluate(const Flow& flow) const = 0;

  /// Evaluate a batch; results keep caller order (result[i] belongs to
  /// flows[i] regardless of internal scheduling). `pool` is advisory — the
  /// in-process engine fans out across it, a remote evaluator (whose
  /// parallelism is its worker processes) may ignore it. Throws if any
  /// flow cannot be evaluated; never returns a partially-filled batch.
  virtual std::vector<map::QoR> evaluate_many(
      std::span<const Flow> flows, util::ThreadPool* pool = nullptr) const = 0;

  /// QoR of the unsynthesized design (= the empty flow, by definition).
  virtual map::QoR baseline() const { return evaluate(Flow{}); }
};

}  // namespace flowgen::core
