#pragma once
// The evaluation seam of the framework: everything downstream of component
// (1) — labeling, selection probes, the pipeline — consumes flow QoRs
// through this interface and never cares *where* synthesis ran. Two
// implementations exist:
//
//  * core::SynthesisEvaluator — in-process, the prefix-sharing engine,
//  * service::RemoteEvaluator — a client that shards batches across
//    evald worker processes over unix/tcp sockets.
//
// Both are exact (synthesis and mapping are pure functions of the design
// and the step sequence), so callers may switch between them freely and
// expect bit-identical QoR.

#include <span>
#include <vector>

#include "core/flow.hpp"
#include "map/qor.hpp"
#include "util/thread_pool.hpp"

namespace flowgen::core {

class FlowEvaluator {
public:
  virtual ~FlowEvaluator() = default;

  /// Synthesize + map one flow and report its QoR.
  virtual map::QoR evaluate(const Flow& flow) const = 0;

  /// Evaluate a batch; results keep caller order. `pool` is advisory — the
  /// in-process engine fans out across it, a remote evaluator (whose
  /// parallelism is its worker processes) may ignore it.
  virtual std::vector<map::QoR> evaluate_many(
      std::span<const Flow> flows, util::ThreadPool* pool = nullptr) const = 0;

  /// QoR of the unsynthesized design (empty flow).
  virtual map::QoR baseline() const { return evaluate(Flow{}); }
};

}  // namespace flowgen::core
