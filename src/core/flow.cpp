#include "core/flow.hpp"

namespace flowgen::core {

namespace {

char step_char(opt::StepId id) {
  if (id < 10) return static_cast<char>('0' + id);
  if (id < 36) return static_cast<char>('a' + (id - 10));
  throw opt::RegistryError("Flow::key: step id " +
                           std::to_string(unsigned{id}) +
                           " has no single-character form (>= 36)");
}

}  // namespace

std::string Flow::key() const {
  std::string k;
  k.reserve(steps.size());
  for (opt::StepId t : steps) k += step_char(t);
  return k;
}

std::string Flow::to_string(const opt::TransformRegistry& registry) const {
  std::string s;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (i) s += "; ";
    s += registry.name(steps[i]);
  }
  return s;
}

std::string Flow::to_abc_script(const opt::TransformRegistry& registry) const {
  std::string s = "strash";
  for (opt::StepId t : steps) {
    s += "; ";
    // ABC commands come from the canonical text form, never the free-form
    // spec name (which may be anything): spec_text of a restructure spec
    // always starts with "restructure", so the resub rename is safe, and
    // parameter flags carry over verbatim ("restructure -K 6" ->
    // "resub -K 6"). Our windowed resubstitution is ABC's `resub`.
    std::string cmd = opt::spec_text(registry.spec(t));
    if (registry.spec(t).base == opt::TransformKind::kRestructure) {
      cmd = "resub" + cmd.substr(std::string("restructure").size());
    }
    s += cmd;
  }
  s += "; map";
  return s;
}

Flow Flow::from_key(const std::string& key,
                    const opt::TransformRegistry& registry) {
  Flow f;
  f.steps.reserve(key.size());
  for (char c : key) {
    opt::StepId id = 0;
    if (c >= '0' && c <= '9') {
      id = static_cast<opt::StepId>(c - '0');
    } else if (c >= 'a' && c <= 'z') {
      id = static_cast<opt::StepId>(10 + (c - 'a'));
    } else {
      throw opt::RegistryError(std::string("Flow::from_key: bad step "
                                           "character '") +
                               c + "'");
    }
    registry.validate_step(id);
    f.steps.push_back(id);
  }
  return f;
}

}  // namespace flowgen::core
