#include "core/flow.hpp"

#include <stdexcept>

namespace flowgen::core {

std::string Flow::key() const {
  std::string k;
  k.reserve(steps.size());
  for (opt::TransformKind t : steps) {
    k += static_cast<char>('0' + static_cast<unsigned>(t));
  }
  return k;
}

std::string Flow::to_string() const {
  std::string s;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (i) s += "; ";
    s += opt::transform_name(steps[i]);
  }
  return s;
}

std::string Flow::to_abc_script() const {
  std::string s = "strash";
  for (opt::TransformKind t : steps) {
    s += "; ";
    // Our windowed resubstitution is ABC's `resub`.
    s += (t == opt::TransformKind::kRestructure)
             ? std::string("resub")
             : opt::transform_name(t);
  }
  s += "; map";
  return s;
}

Flow Flow::from_key(const std::string& key) {
  Flow f;
  f.steps.reserve(key.size());
  for (char c : key) {
    const int v = c - '0';
    if (v < 0 || v >= static_cast<int>(opt::kNumTransforms)) {
      throw std::invalid_argument("Flow::from_key: bad digit");
    }
    f.steps.push_back(static_cast<opt::TransformKind>(v));
  }
  return f;
}

}  // namespace flowgen::core
