#pragma once
// Component (3) of the framework: angel/devil flow selection (Section 3.3,
// Table 2). From the classifier's softmax output, flows predicted in the
// target class are ranked by their confidence (probability of that class);
// the top `count` are selected. Flows predicted in other classes are
// eliminated first, exactly as Example 4 eliminates F4.

#include <cstdint>
#include <span>
#include <vector>

#include "core/classifier.hpp"
#include "core/evaluator.hpp"
#include "core/labeler.hpp"
#include "nn/tensor.hpp"
#include "util/thread_pool.hpp"

namespace flowgen::core {

struct RankedFlow {
  std::size_t index = 0;           ///< row in the probability matrix
  double confidence = 0.0;         ///< p(target class)
  std::uint32_t predicted = 0;     ///< argmax class
};

/// Rank flows for `target_class` and return up to `count` selections.
/// Flows whose argmax equals the target always outrank flows whose argmax
/// does not; ties broken by confidence. If fewer than `count` flows are
/// predicted in the target class, the remainder is filled by confidence
/// order (so the caller always gets `count` flows when enough rows exist).
std::vector<RankedFlow> select_top_flows(const nn::Tensor& probabilities,
                                         std::uint32_t target_class,
                                         std::size_t count);

/// Result of one full "predict pool -> select angel/devil -> synthesize the
/// selections -> compare against true classes" round.
struct SelectionProbe {
  std::vector<RankedFlow> angel;
  std::vector<RankedFlow> devil;
  std::vector<map::QoR> angel_qor;
  std::vector<map::QoR> devil_qor;
  /// The paper's accuracy: (N_angel + N_devil) / (|angel| + |devil|).
  double accuracy = 0.0;
};

/// Runs the paper's evaluation protocol. `chunk` bounds prediction batch
/// sizes; the evaluator's cache makes repeated probes cheap.
SelectionProbe probe_selection_accuracy(CnnFlowClassifier& classifier,
                                        const Labeler& labeler,
                                        const std::vector<Flow>& pool,
                                        const FlowEvaluator& evaluator,
                                        std::size_t per_side,
                                        util::ThreadPool* threads = nullptr,
                                        std::size_t chunk = 256);

}  // namespace flowgen::core
