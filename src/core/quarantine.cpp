#include "core/quarantine.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "aig/serialize.hpp"
#include "util/log.hpp"

namespace flowgen::core {
namespace {

constexpr const char* kFileName = "QUARANTINE";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool parse_hex(const std::string& s, std::vector<std::uint8_t>* out) {
  if (s.size() % 2 != 0) return false;
  out->clear();
  out->reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2) {
    const int hi = hex_nibble(s[i]);
    const int lo = hex_nibble(s[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return true;
}

std::string steps_hex(StepsView steps) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(steps.size() * 2);
  for (const auto step : steps) {
    const auto b = static_cast<std::uint8_t>(step);
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

bool parse_fingerprint(const std::string& s, aig::Fingerprint* out) {
  std::vector<std::uint8_t> bytes;
  if (!parse_hex(s, &bytes) || bytes.size() != 16) return false;
  for (int half = 0; half < 2; ++half) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | bytes[half * 8 + i];
    (*out)[half] = v;
  }
  return true;
}

}  // namespace

QuarantineList::QuarantineList(const std::string& dir)
    : path_(dir + "/" + kFileName) {
  std::lock_guard lock(mu_);
  load_locked();
}

void QuarantineList::load_locked() {
  std::ifstream in(path_);
  if (!in.is_open()) return;  // no convictions yet
  std::string line;
  std::size_t skipped = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string design_hex, flow_hex, reason;
    std::uint32_t losses = 0;
    QuarantineEntry e;
    std::vector<std::uint8_t> steps;
    if (!(fields >> design_hex >> flow_hex >> losses) ||
        !parse_fingerprint(design_hex, &e.design) ||
        !parse_hex(flow_hex, &steps)) {
      // Torn or hand-mangled line: skip it (the crash that tore it already
      // cost the conviction; the flow will be re-convicted if still toxic).
      ++skipped;
      continue;
    }
    std::getline(fields >> std::ws, reason);
    e.steps.assign(steps.begin(), steps.end());
    e.losses = losses;
    e.reason = std::move(reason);
    Key key{e.design, e.steps};
    entries_.insert_or_assign(std::move(key), std::move(e));
  }
  if (skipped != 0)
    util::log_warn("quarantine: skipped ", skipped, " malformed line(s) in ",
                   path_);
  if (!entries_.empty())
    util::log_info("quarantine: loaded ", entries_.size(), " entr",
                   entries_.size() == 1 ? "y" : "ies", " from ", path_);
}

bool QuarantineList::contains(const aig::Fingerprint& design,
                              StepsView steps) const {
  std::lock_guard lock(mu_);
  return entries_.find(Key{design, StepsKey(steps.begin(), steps.end())}) !=
         entries_.end();
}

bool QuarantineList::add(const aig::Fingerprint& design, StepsView steps,
                         std::uint32_t losses, const std::string& reason) {
  QuarantineEntry e;
  e.design = design;
  e.steps.assign(steps.begin(), steps.end());
  e.losses = losses;
  e.reason = reason;
  {
    std::lock_guard lock(mu_);
    Key key{design, e.steps};
    if (!entries_.emplace(std::move(key), e).second) return false;
  }
  if (!path_.empty()) {
    // One line, one write: O_APPEND via "a" keeps concurrent coordinators
    // from interleaving partial lines. Reasons are kept single-line.
    std::string clean = reason;
    std::replace(clean.begin(), clean.end(), '\n', ' ');
    std::ofstream out(path_, std::ios::app);
    if (out.is_open()) {
      out << aig::fingerprint_hex(design) << ' ' << steps_hex(steps) << ' '
          << losses << ' ' << clean << '\n';
    }
    if (!out.good()) {
      util::log_warn("quarantine: could not persist entry to ", path_,
                     " (in-memory quarantine still active)");
    }
  }
  return true;
}

std::vector<QuarantineEntry> QuarantineList::entries() const {
  std::lock_guard lock(mu_);
  std::vector<QuarantineEntry> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) out.push_back(e);
  std::sort(out.begin(), out.end(),
            [](const QuarantineEntry& a, const QuarantineEntry& b) {
              if (a.design != b.design) return a.design < b.design;
              return a.steps < b.steps;
            });
  return out;
}

std::size_t QuarantineList::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

}  // namespace flowgen::core
