#include "core/flow_cache.hpp"

#include "telemetry/metrics.hpp"

namespace flowgen::core {

namespace {

/// Process-wide flow-cache telemetry; several evaluators (several caches)
/// sum into the same series, which matches the fleet view. Byte gauges
/// track deltas, so they mirror live occupancy across all instances.
struct CacheMetrics {
  telemetry::Counter& lookups;
  telemetry::Counter& hits;
  telemetry::Counter& steps_saved;
  telemetry::Counter& insertions;
  telemetry::Counter& evictions;
  telemetry::Counter& analysis_evictions;
  telemetry::Gauge& bytes;
  telemetry::Gauge& analysis_bytes;
};

CacheMetrics& cache_metrics() {
  static CacheMetrics m{
      telemetry::counter("flowgen_flow_cache_lookups_total",
                         "Prefix-cache longest_prefix probes"),
      telemetry::counter("flowgen_flow_cache_hits_total",
                         "Probes that resumed from a snapshot"),
      telemetry::counter("flowgen_flow_cache_steps_saved_total",
                         "Transform passes skipped via snapshots"),
      telemetry::counter("flowgen_flow_cache_insertions_total",
                         "Snapshots inserted"),
      telemetry::counter("flowgen_flow_cache_evictions_total",
                         "Snapshots evicted by the byte budget"),
      telemetry::counter("flowgen_flow_cache_analysis_evictions_total",
                         "Analysis attachments stripped by the byte budget"),
      telemetry::gauge("flowgen_flow_cache_bytes",
                       "Live prefix-cache bytes (snapshots + analysis)"),
      telemetry::gauge("flowgen_flow_cache_analysis_bytes",
                       "Live analysis-attachment bytes"),
  };
  return m;
}

}  // namespace

PrefixFlowCache::PrefixFlowCache(FlowCacheConfig config)
    : config_(config) {
  const std::size_t n = round_up_shards(config_.shards);
  shard_mask_ = n - 1;
  budget_per_shard_ = config_.byte_budget / n;
  shards_ = std::vector<Shard>(n);
}

void PrefixFlowCache::Shard::enforce_budget(
    std::size_t budget, std::atomic<std::size_t>& stripped_counter) {
  // Analysis artifacts are cheaper to lose than snapshots (a stripped
  // attachment is recomputed lazily; an evicted snapshot re-runs whole
  // transform prefixes), so strip every attachment LRU-first before any
  // snapshot goes.
  CacheMetrics& m = cache_metrics();
  while (bytes > budget && analysis_bytes > 0) {
    bool stripped = false;
    for (auto it = lru.rbegin(); it != lru.rend(); ++it) {
      if (!it->analysis) continue;
      bytes -= it->analysis_bytes;
      analysis_bytes -= it->analysis_bytes;
      m.bytes.sub(static_cast<double>(it->analysis_bytes));
      m.analysis_bytes.sub(static_cast<double>(it->analysis_bytes));
      m.analysis_evictions.inc();
      it->analysis.reset();
      it->analysis_bytes = 0;
      ++analysis_evictions;
      stripped_counter.fetch_add(1, std::memory_order_relaxed);
      stripped = true;
      break;
    }
    if (!stripped) break;
  }
  while (bytes > budget && !lru.empty()) {
    const Entry& victim = lru.back();
    bytes -= victim.bytes + victim.analysis_bytes;
    analysis_bytes -= victim.analysis_bytes;
    m.bytes.sub(static_cast<double>(victim.bytes + victim.analysis_bytes));
    m.analysis_bytes.sub(static_cast<double>(victim.analysis_bytes));
    m.evictions.inc();
    if (victim.analysis) {
      stripped_counter.fetch_add(1, std::memory_order_relaxed);
    }
    index.erase(victim.key);
    lru.pop_back();
    ++evictions;
  }
}

PrefixFlowCache::Hit PrefixFlowCache::longest_prefix(StepsView steps) const {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  CacheMetrics& m = cache_metrics();
  m.lookups.inc();
  const std::size_t start =
      std::min(steps.size(), config_.max_snapshot_depth);
  for (std::size_t len = start; len > 0; --len) {
    const StepsView prefix = steps.subspan(0, len);
    Shard& shard = shard_for(prefix);
    std::lock_guard lock(shard.mutex);
    const auto it = shard.index.find(prefix);
    if (it == shard.index.end()) continue;
    // Touch: move to the front of the LRU list.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    steps_saved_.fetch_add(len, std::memory_order_relaxed);
    m.hits.inc();
    m.steps_saved.inc(len);
    Entry& entry = *it->second;
    Hit hit{len, entry.aig, entry.analysis};
    // The attachment grows as evaluations fill it lazily; re-poll so the
    // budget stays honest, and shed load if it no longer holds. The hit
    // keeps its shared_ptr either way.
    if (entry.analysis) {
      const std::size_t polled = entry.analysis->memory_bytes();
      const double grown = static_cast<double>(polled) -
                           static_cast<double>(entry.analysis_bytes);
      m.bytes.add(grown);
      m.analysis_bytes.add(grown);
      shard.bytes += polled - entry.analysis_bytes;
      shard.analysis_bytes += polled - entry.analysis_bytes;
      entry.analysis_bytes = polled;
      shard.enforce_budget(budget_per_shard_, analysis_stripped_);
    }
    return hit;
  }
  return {};
}

void PrefixFlowCache::insert(StepsView steps,
                             std::shared_ptr<const aig::Aig> aig,
                             std::shared_ptr<aig::AnalysisCache> analysis) {
  if (!aig || steps.empty() || steps.size() > config_.max_snapshot_depth) {
    return;
  }
  const std::size_t bytes = aig->memory_bytes() +
                            steps.size() * sizeof(opt::StepId) +
                            sizeof(Entry);
  if (bytes > budget_per_shard_) return;  // would evict the whole shard
  std::size_t analysis_bytes = analysis ? analysis->memory_bytes() : 0;
  if (bytes + analysis_bytes > budget_per_shard_) {
    analysis.reset();  // keep the snapshot, drop the oversize attachment
    analysis_bytes = 0;
  }
  Shard& shard = shard_for(steps);
  std::lock_guard lock(shard.mutex);
  if (shard.index.contains(steps)) return;  // first snapshot wins
  shard.lru.push_front(Entry{StepsKey(steps.begin(), steps.end()),
                             std::move(aig), std::move(analysis), bytes,
                             analysis_bytes});
  shard.index.emplace(shard.lru.front().key, shard.lru.begin());
  shard.bytes += bytes + analysis_bytes;
  shard.analysis_bytes += analysis_bytes;
  CacheMetrics& m = cache_metrics();
  m.insertions.inc();
  m.bytes.add(static_cast<double>(bytes + analysis_bytes));
  m.analysis_bytes.add(static_cast<double>(analysis_bytes));
  if (shard.lru.front().analysis) {
    analysis_attached_.fetch_add(1, std::memory_order_relaxed);
  }
  ++shard.insertions;
  shard.enforce_budget(budget_per_shard_, analysis_stripped_);
}

FlowCacheStats PrefixFlowCache::stats() const {
  FlowCacheStats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.steps_saved = steps_saved_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    s.entries += shard.index.size();
    s.bytes += shard.bytes;
    s.analysis_bytes += shard.analysis_bytes;
    s.evictions += shard.evictions;
    s.analysis_evictions += shard.analysis_evictions;
    s.insertions += shard.insertions;
  }
  return s;
}

void PrefixFlowCache::clear() {
  CacheMetrics& m = cache_metrics();
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    m.bytes.sub(static_cast<double>(shard.bytes));
    m.analysis_bytes.sub(static_cast<double>(shard.analysis_bytes));
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
    shard.analysis_bytes = 0;
  }
}

}  // namespace flowgen::core
