#include "core/flow_cache.hpp"

namespace flowgen::core {

PrefixFlowCache::PrefixFlowCache(FlowCacheConfig config)
    : config_(config) {
  const std::size_t n = round_up_shards(config_.shards);
  shard_mask_ = n - 1;
  budget_per_shard_ = config_.byte_budget / n;
  shards_ = std::vector<Shard>(n);
}

PrefixFlowCache::Hit PrefixFlowCache::longest_prefix(StepsView steps) const {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t start =
      std::min(steps.size(), config_.max_snapshot_depth);
  for (std::size_t len = start; len > 0; --len) {
    const StepsView prefix = steps.subspan(0, len);
    Shard& shard = shard_for(prefix);
    std::lock_guard lock(shard.mutex);
    const auto it = shard.index.find(prefix);
    if (it == shard.index.end()) continue;
    // Touch: move to the front of the LRU list.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    steps_saved_.fetch_add(len, std::memory_order_relaxed);
    return Hit{len, it->second->aig};
  }
  return {};
}

void PrefixFlowCache::insert(StepsView steps,
                             std::shared_ptr<const aig::Aig> aig) {
  if (!aig || steps.empty() || steps.size() > config_.max_snapshot_depth) {
    return;
  }
  const std::size_t bytes = aig->memory_bytes() +
                            steps.size() * sizeof(opt::TransformKind) +
                            sizeof(Entry);
  if (bytes > budget_per_shard_) return;  // would evict the whole shard
  Shard& shard = shard_for(steps);
  std::lock_guard lock(shard.mutex);
  if (shard.index.contains(steps)) return;  // first snapshot wins
  shard.lru.push_front(
      Entry{StepsKey(steps.begin(), steps.end()), std::move(aig), bytes});
  shard.index.emplace(shard.lru.front().key, shard.lru.begin());
  shard.bytes += bytes;
  ++shard.insertions;
  while (shard.bytes > budget_per_shard_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

FlowCacheStats PrefixFlowCache::stats() const {
  FlowCacheStats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.steps_saved = steps_saved_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    s.entries += shard.index.size();
    s.bytes += shard.bytes;
    s.evictions += shard.evictions;
    s.insertions += shard.insertions;
  }
  return s;
}

void PrefixFlowCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

}  // namespace flowgen::core
