#pragma once
// Component (1) of the framework (Figure 2): apply a synthesis flow to the
// design and collect its QoR after technology mapping. This is by far the
// dominant runtime of the whole pipeline (as in the paper, where dataset
// collection is ~95% of wall-clock), so evaluation is a real engine here:
//
//  * QoR results are memoised in a sharded map keyed by the packed step
//    sequence (no string keys, no global lock on the hot path),
//  * synthesis resumes from the deepest prefix snapshot in a byte-budgeted
//    PrefixFlowCache instead of re-running the whole flow,
//  * technology mapping is deduplicated by structural fingerprint — flows
//    that converge to the same graph map once,
//  * evaluate_many sorts the batch lexicographically so sibling flows hit
//    warm prefixes, and schedules contiguous groups across the thread pool.
//
// All three layers are exact: a prefix snapshot *is* the AIG of that prefix
// and mapping is a pure function of the graph, so cached, serial and
// parallel evaluation return bit-identical QoR.

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "aig/aig.hpp"
#include "core/flow.hpp"
#include "core/flow_cache.hpp"
#include "core/flow_evaluator.hpp"
#include "map/cell_library.hpp"
#include "map/mapper.hpp"
#include "map/qor.hpp"
#include "util/thread_pool.hpp"

namespace flowgen::telemetry {
class Counter;
class Histogram;
}  // namespace flowgen::telemetry

namespace flowgen::core {

class QorStore;

struct EvaluatorConfig {
  /// The transform alphabet this evaluator dispatches step ids through;
  /// null = the paper registry. Every flow handed to evaluate() is
  /// validated against it (out-of-range ids are a typed
  /// opt::RegistryError), and an attached QorStore must carry the same
  /// registry fingerprint.
  std::shared_ptr<const opt::TransformRegistry> registry;
  /// Resume synthesis from cached prefix snapshots. Off = every cache-missing
  /// flow is synthesized from scratch (the pre-engine behaviour).
  bool use_prefix_cache = true;
  /// Dedup technology mapping by the final graph's structural fingerprint.
  bool dedup_mappings = true;
  /// Share transform analysis (cut sets, windows, resub/factor plans)
  /// across flows: the design's own AnalysisCache warms every first step,
  /// prefix snapshots carry theirs, and each step derives the next graph's
  /// analysis from the damage report instead of recomputing it. QoR is
  /// bit-identical on or off; off reproduces the per-pass-from-scratch cost
  /// model (for benchmarking the engine).
  bool share_analysis = true;
  /// Shards of the QoR/fingerprint caches (rounded up to a power of two).
  std::size_t qor_shards = 16;
  FlowCacheConfig prefix_cache;
};

/// Counters for benchmarking and regression tracking; all monotonic.
/// Caches are check-then-act without holding locks across synthesis or
/// mapping, so two threads racing on the same flow/graph may both do the
/// work (first result wins, results are identical either way). Exact
/// invariants like mappings + mappings_deduped == evaluations therefore
/// hold for serial batches only; under concurrency the counters can
/// overshoot by the number of such races.
struct EvaluatorStats {
  std::size_t evaluations = 0;        ///< flow-level cache misses
  std::size_t transforms_applied = 0; ///< transform passes actually run
  std::size_t transforms_skipped = 0; ///< passes saved by prefix snapshots
  std::size_t mappings = 0;           ///< technology mappings actually run
  std::size_t mappings_deduped = 0;   ///< served by fingerprint dedup
  FlowCacheStats prefix;              ///< prefix-cache internals
};

class SynthesisEvaluator : public FlowEvaluator {
public:
  explicit SynthesisEvaluator(
      aig::Aig design,
      const map::CellLibrary& lib = map::CellLibrary::builtin(),
      map::MapperParams mapper_params = {}, EvaluatorConfig config = {});

  const aig::Aig& design() const { return design_; }
  const EvaluatorConfig& config() const { return config_; }
  /// Content identity of the evaluated design (cached at construction);
  /// keys this evaluator's records in a QorStore and on the wire.
  const aig::Fingerprint& design_fingerprint() const { return design_fp_; }
  /// The alphabet step ids dispatch through (paper registry by default).
  const opt::TransformRegistry& registry() const { return *registry_; }
  const std::shared_ptr<const opt::TransformRegistry>& registry_ptr() const {
    return registry_;
  }

  /// Seed the QoR cache with a known-correct result for `steps` (e.g. a
  /// QorStore record). Does not count as an evaluation; a later evaluate()
  /// of the same flow is a pure cache hit. First result wins on duplicate
  /// keys. Thread-safe.
  void warm_qor(StepsView steps, const map::QoR& qor) const;

  /// Attach a persistent label store: stored records answer evaluate()
  /// lazily (a cache miss consults the store before synthesizing — attach
  /// is O(1) even at 10^6+ records, and only the flows actually requested
  /// warm the cache), and every genuinely fresh result is appended to the
  /// store as it completes. Throws opt::RegistryError when the store's
  /// registry fingerprint differs from this evaluator's — labels keyed by
  /// another alphabet must never warm these caches. Call before evaluation
  /// starts; not thread-safe against concurrent evaluate().
  void attach_store(std::shared_ptr<QorStore> store);

  /// Synthesize (transform sequence) + map + report QoR. Thread-safe;
  /// results are cached by packed flow key.
  map::QoR evaluate(const Flow& flow) const override;

  /// Evaluate a batch, optionally across a thread pool. The batch is
  /// processed in lexicographic step order (results keep caller order) so
  /// flows sharing a prefix run back to back against a warm cache.
  std::vector<map::QoR> evaluate_many(
      std::span<const Flow> flows,
      util::ThreadPool* pool = nullptr) const override;

  /// QoR of the unsynthesized design (empty flow).
  map::QoR baseline() const override;

  std::size_t cache_size() const;
  /// Total number of flow evaluations that missed the QoR cache.
  std::size_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }
  EvaluatorStats stats() const;

private:
  using Fingerprint = aig::Fingerprint;
  struct FingerprintHash {
    std::size_t operator()(const Fingerprint& fp) const noexcept {
      return static_cast<std::size_t>(fp[0] ^ (fp[1] * 0x9e3779b97f4a7c15ull));
    }
  };
  struct QorShard {
    mutable std::mutex mutex;
    std::unordered_map<StepsKey, map::QoR, StepsHash, StepsEqual> by_flow;
    std::unordered_map<Fingerprint, map::QoR, FingerprintHash> by_fingerprint;
  };

  QorShard& shard_for_flow(StepsView steps) const {
    return shards_[StepsHash{}(steps) & shard_mask_];
  }
  QorShard& shard_for_fp(const Fingerprint& fp) const {
    return shards_[fp[0] & shard_mask_];
  }

  /// Full miss path: prefix-resume synthesis + (deduped) mapping.
  map::QoR evaluate_uncached(StepsView steps) const;
  map::QoR map_deduped(const aig::Aig& g) const;

  aig::Aig design_;
  aig::Fingerprint design_fp_{};
  std::shared_ptr<const opt::TransformRegistry> registry_;
  /// Warm analysis for design_ itself: every flow's first transform runs
  /// against it, so windows/plans/cut sets of the raw design are computed
  /// once per evaluator instead of once per flow.
  std::shared_ptr<aig::AnalysisCache> design_analysis_;
  const map::CellLibrary& lib_;
  map::MapperParams mapper_params_;
  EvaluatorConfig config_;
  std::shared_ptr<QorStore> store_;

  std::size_t shard_mask_ = 0;
  mutable std::vector<QorShard> shards_;
  mutable std::unique_ptr<PrefixFlowCache> prefix_cache_;

  /// Telemetry handles, resolved once at construction so the hot path
  /// never touches the registry map. Per-spec latency histograms are
  /// indexed by StepId, split warm (analysis carried in) vs cold.
  telemetry::Counter* tm_evaluations_ = nullptr;
  telemetry::Counter* tm_transforms_applied_ = nullptr;
  telemetry::Counter* tm_transforms_skipped_ = nullptr;
  telemetry::Counter* tm_mappings_ = nullptr;
  telemetry::Counter* tm_mappings_deduped_ = nullptr;
  telemetry::Histogram* tm_mapping_ms_ = nullptr;
  std::vector<telemetry::Histogram*> tm_spec_ms_warm_;
  std::vector<telemetry::Histogram*> tm_spec_ms_cold_;

  /// Round-robin over analysis-derive probes while retention is down.
  mutable std::atomic<std::size_t> derive_probe_{0};
  mutable std::atomic<std::size_t> evaluations_{0};
  mutable std::atomic<std::size_t> transforms_applied_{0};
  mutable std::atomic<std::size_t> transforms_skipped_{0};
  mutable std::atomic<std::size_t> mappings_{0};
  mutable std::atomic<std::size_t> mappings_deduped_{0};
};

}  // namespace flowgen::core
