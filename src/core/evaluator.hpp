#pragma once
// Component (1) of the framework (Figure 2): apply a synthesis flow to the
// design and collect its QoR after technology mapping. This is by far the
// dominant runtime of the whole pipeline (as in the paper, where dataset
// collection is ~95% of wall-clock), so evaluation is parallelised and
// memoised by flow key.

#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "aig/aig.hpp"
#include "core/flow.hpp"
#include "map/cell_library.hpp"
#include "map/mapper.hpp"
#include "map/qor.hpp"
#include "util/thread_pool.hpp"

namespace flowgen::core {

class SynthesisEvaluator {
public:
  explicit SynthesisEvaluator(
      aig::Aig design,
      const map::CellLibrary& lib = map::CellLibrary::builtin(),
      map::MapperParams mapper_params = {});

  const aig::Aig& design() const { return design_; }

  /// Synthesize (transform sequence) + map + report QoR. Thread-safe;
  /// results are cached by flow key.
  map::QoR evaluate(const Flow& flow) const;

  /// Evaluate a batch, optionally across a thread pool.
  std::vector<map::QoR> evaluate_many(std::span<const Flow> flows,
                                      util::ThreadPool* pool = nullptr) const;

  /// QoR of the unsynthesized design (empty flow).
  map::QoR baseline() const;

  std::size_t cache_size() const;
  /// Total number of flow evaluations that missed the cache.
  std::size_t evaluations() const { return evaluations_; }

private:
  aig::Aig design_;
  const map::CellLibrary& lib_;
  map::MapperParams mapper_params_;

  mutable std::mutex mutex_;
  mutable std::unordered_map<std::string, map::QoR> cache_;
  mutable std::size_t evaluations_ = 0;
};

}  // namespace flowgen::core
