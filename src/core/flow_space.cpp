#include "core/flow_space.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <stdexcept>
#include <unordered_set>

namespace flowgen::core {

std::string u128_to_string(U128 v) {
  if (v == 0) return "0";
  std::string s;
  while (v > 0) {
    s += static_cast<char>('0' + static_cast<unsigned>(v % 10));
    v /= 10;
  }
  std::reverse(s.begin(), s.end());
  return s;
}

namespace {

U128 checked_mul(U128 a, U128 b) {
  if (a != 0 && b > static_cast<U128>(-1) / a) {
    throw std::overflow_error("count_limited_permutations: 128-bit overflow");
  }
  return a * b;
}

U128 binomial(unsigned n, unsigned k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  U128 result = 1;
  for (unsigned i = 1; i <= k; ++i) {
    result = checked_mul(result, n - k + i) / i;
  }
  return result;
}

}  // namespace

U128 count_limited_permutations(unsigned n, unsigned length, unsigned m) {
  if (length == 0) return 1;
  if (n == 0) return 0;
  if (static_cast<unsigned long long>(n) * m < length) return 0;

  // f[k][l] = number of l-permutations of k objects, each used <= m times.
  // Filled with the Remark 3 recursion:
  //   f(k, l+1) = k f(k, l) - k C(l, m) f(k-1, l-m)
  std::vector<std::vector<U128>> f(n + 1,
                                   std::vector<U128>(length + 1, 0));
  for (unsigned k = 0; k <= n; ++k) f[k][0] = 1;
  for (unsigned k = 1; k <= n; ++k) {
    for (unsigned l = 0; l < length; ++l) {
      // number of (l+1)-permutations
      U128 value = checked_mul(f[k][l], k);
      if (l >= m) {
        const U128 drop =
            checked_mul(checked_mul(binomial(l, m), f[k - 1][l - m]), k);
        value -= drop;
      }
      f[k][l + 1] = value;
    }
  }
  return f[n][length];
}

namespace {

/// The codebase-wide convention (EvaluatorConfig, CoordinatorConfig,
/// QorStoreConfig, PipelineConfig): a null registry means the paper one.
std::shared_ptr<const opt::TransformRegistry> or_paper(
    std::shared_ptr<const opt::TransformRegistry> registry) {
  return registry ? std::move(registry) : opt::TransformRegistry::paper();
}

}  // namespace

FlowSpace::FlowSpace(unsigned m,
                     std::shared_ptr<const opt::TransformRegistry> registry)
    : FlowSpace(m, or_paper(registry)->all_ids(), or_paper(registry)) {}

FlowSpace::FlowSpace(unsigned m, std::vector<opt::StepId> transforms,
                     std::shared_ptr<const opt::TransformRegistry> registry)
    : m_(m), registry_(or_paper(std::move(registry))),
      transforms_(std::move(transforms)) {
  if (m_ == 0 || transforms_.empty()) {
    throw std::invalid_argument("FlowSpace: need m >= 1 and a non-empty S");
  }
  // Every id must name a spec — a space over undefined steps would sample
  // flows nothing can evaluate.
  registry_->validate_steps(transforms_);
}

U128 FlowSpace::size() const {
  return count_limited_permutations(num_transforms(), length(), m_);
}

bool FlowSpace::satisfies_constraints(const Flow& flow) const {
  for (const PrecedenceConstraint& c : constraints_) {
    // Every occurrence of `before` must precede every occurrence of
    // `after`: last(before) < first(after).
    std::ptrdiff_t last_before = -1;
    std::ptrdiff_t first_after = static_cast<std::ptrdiff_t>(flow.length());
    for (std::size_t i = 0; i < flow.length(); ++i) {
      if (flow.steps[i] == c.before) {
        last_before = static_cast<std::ptrdiff_t>(i);
      }
      if (flow.steps[i] == c.after &&
          first_after == static_cast<std::ptrdiff_t>(flow.length())) {
        first_after = static_cast<std::ptrdiff_t>(i);
      }
    }
    if (last_before > first_after) return false;
  }
  return true;
}

Flow FlowSpace::random_flow(util::Rng& rng) const {
  Flow f;
  f.steps.reserve(length());
  for (opt::StepId t : transforms_) {
    for (unsigned r = 0; r < m_; ++r) f.steps.push_back(t);
  }
  // Rejection sampling keeps the distribution uniform over the constrained
  // space; constraint sets in practice keep acceptance high.
  for (int attempt = 0; attempt < 100000; ++attempt) {
    rng.shuffle(f.steps);
    if (satisfies_constraints(f)) return f;
  }
  throw std::runtime_error(
      "FlowSpace::random_flow: constraints reject everything");
}

std::vector<Flow> FlowSpace::sample_unique(std::size_t count,
                                           util::Rng& rng) const {
  if (static_cast<U128>(count) > size()) {
    throw std::invalid_argument("sample_unique: space is smaller than count");
  }
  std::vector<Flow> flows;
  flows.reserve(count);
  // Dedup on the packed step keys, not text keys: Flow::key() tops out at
  // 36 single-character ids, the byte form never does.
  std::unordered_set<StepsKey, StepsHash, StepsEqual> seen;
  seen.reserve(count * 2);
  while (flows.size() < count) {
    Flow f = random_flow(rng);
    if (seen.insert(f.steps).second) flows.push_back(std::move(f));
  }
  return flows;
}

bool FlowSpace::contains(const Flow& flow) const {
  if (flow.length() != length()) return false;
  if (!satisfies_constraints(flow)) return false;
  std::map<opt::StepId, unsigned> counts;
  for (opt::StepId t : flow.steps) ++counts[t];
  for (opt::StepId t : transforms_) {
    const auto it = counts.find(t);
    if (it == counts.end() || it->second != m_) return false;
    counts.erase(it);
  }
  return counts.empty();
}

}  // namespace flowgen::core
