#pragma once
// Prefix-sharing cache of intermediate synthesis results. The m-repetition
// flow space produces batches whose members share long common prefixes;
// synthesizing each flow from scratch redoes that shared work. This cache
// stores AIG snapshots keyed by flow *prefix* (the packed step sequence) so
// the evaluator can resume from the deepest cached prefix and apply only the
// suffix transforms.
//
// Concurrency: the key space is sharded by hash; every shard has its own
// mutex, LRU list and byte budget, so parallel evaluation of a sorted batch
// does not serialise on one lock. Memory: snapshots are whole AIG copies,
// so each shard enforces `byte_budget / shards` with least-recently-used
// eviction (Aig::memory_bytes accounting). Readers receive shared_ptr
// snapshots, so eviction never invalidates a graph in use.

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "aig/aig.hpp"
#include "aig/analysis.hpp"
#include "core/flow.hpp"

namespace flowgen::core {

/// Round a requested shard count up to a power of two (>= 1) so shard
/// selection is a mask of the key hash. Shared by every sharded cache.
inline std::size_t round_up_shards(std::size_t requested) {
  return std::bit_ceil(std::max<std::size_t>(1, requested));
}

/// Tuning knobs for PrefixFlowCache; plain data, safe to copy around.
struct FlowCacheConfig {
  /// Total snapshot budget across all shards.
  std::size_t byte_budget = std::size_t{256} << 20;  // 256 MiB
  /// Number of independently locked shards (rounded up to a power of two).
  std::size_t shards = 16;
  /// Snapshots are only stored for prefixes up to this depth. Sharing decays
  /// geometrically with depth (a batch of B flows shares prefixes to depth
  /// ~log_n B), so deep snapshots cost copies but almost never hit.
  std::size_t max_snapshot_depth = 64;
};

/// Monotonic counters plus a point-in-time size snapshot, aggregated
/// across shards by stats(). Values from a concurrently-mutated cache are
/// per-shard consistent but not a global atomic snapshot.
struct FlowCacheStats {
  std::size_t lookups = 0;
  std::size_t hits = 0;        ///< lookups that found a non-empty prefix
  std::size_t insertions = 0;
  std::size_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  /// Bytes of the total that are attached analysis artifacts.
  std::size_t analysis_bytes = 0;
  /// Analysis attachments stripped to honour the budget (snapshots are only
  /// evicted once no attachment is left to strip).
  std::size_t analysis_evictions = 0;
  /// Total transform applications saved (sum of hit depths).
  std::size_t steps_saved = 0;

  /// hits / lookups; 0 when nothing was looked up yet.
  double hit_rate() const {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups)
                   : 0.0;
  }
};

/// Sharded byte-budgeted LRU of AIG snapshots keyed by flow prefix. All
/// public methods are thread-safe (per-shard mutexes; no lock is held
/// across graph work) and non-throwing in normal operation — a full shard
/// evicts, an oversized or over-deep insert is dropped, a miss returns an
/// empty Hit. Snapshots are immutable and handed out as shared_ptr, so a
/// reader can keep using one after it is evicted.
class PrefixFlowCache {
public:
  explicit PrefixFlowCache(FlowCacheConfig config = {});

  /// Result of longest_prefix: the snapshot of the deepest cached prefix
  /// and how many steps it covers. `aig` is null and `depth` 0 on a miss.
  /// `analysis`, when non-null, is the snapshot's warm AnalysisCache —
  /// shared read-only between every evaluation resuming here (its lazy
  /// fills are internally synchronised; evolving pass state is copied out).
  struct Hit {
    std::size_t depth = 0;
    std::shared_ptr<const aig::Aig> aig;
    std::shared_ptr<aig::AnalysisCache> analysis;
  };
  /// Deepest cached prefix of `steps` (possibly all of it). Refreshes the
  /// hit entry's LRU position and re-polls the attachment's byte count
  /// (analysis caches grow as they fill lazily), evicting if the budget is
  /// now exceeded. Thread-safe; never throws.
  Hit longest_prefix(StepsView steps) const;

  /// Store `aig` (and optionally its AnalysisCache) as the snapshot for the
  /// exact prefix `steps`. No-op when the prefix is deeper than
  /// max_snapshot_depth or the snapshot alone is wider than a shard's whole
  /// budget; an analysis attachment that does not fit is dropped while the
  /// snapshot is kept. Keeps the first snapshot on duplicate insert (all
  /// inserts for one key are value-identical by construction). May strip
  /// analysis attachments and then evict LRU entries to honour the shard
  /// budget. Thread-safe.
  void insert(StepsView steps, std::shared_ptr<const aig::Aig> aig,
              std::shared_ptr<aig::AnalysisCache> analysis = nullptr);

  /// Cheap (lock-free) signal for producers of analysis attachments: false
  /// while the budget is proving too tight to retain them (>= 90% of the
  /// sample got stripped), at which point deriving more analysis is mostly
  /// wasted work. The sample decays (both counters halve once large) and
  /// the evaluator keeps attaching a small probe fraction while the signal
  /// is down, so retention recovers when pressure drops. Approximate by
  /// design — purely a performance heuristic; QoR never depends on it.
  bool analysis_retained() const {
    const std::size_t attached =
        analysis_attached_.load(std::memory_order_relaxed);
    const std::size_t stripped =
        analysis_stripped_.load(std::memory_order_relaxed);
    if (attached > 4096) {  // let old verdicts fade (racy halving is fine)
      analysis_attached_.store(attached / 2, std::memory_order_relaxed);
      analysis_stripped_.store(stripped / 2, std::memory_order_relaxed);
    }
    return attached < 32 || stripped * 10 < attached * 9;
  }

  /// Aggregate counters + current entries/bytes across shards. Thread-safe.
  FlowCacheStats stats() const;
  /// Drop every snapshot (budgets/config unchanged). Thread-safe, but the
  /// caller owns the question of who is still evaluating.
  void clear();

  const FlowCacheConfig& config() const { return config_; }

private:
  struct Entry {
    StepsKey key;
    std::shared_ptr<const aig::Aig> aig;
    std::shared_ptr<aig::AnalysisCache> analysis;
    std::size_t bytes = 0;           ///< snapshot + key (excludes analysis)
    std::size_t analysis_bytes = 0;  ///< attachment, as last polled
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<StepsKey, std::list<Entry>::iterator, StepsHash,
                       StepsEqual>
        index;
    std::size_t bytes = 0;
    std::size_t analysis_bytes = 0;
    std::size_t evictions = 0;
    std::size_t analysis_evictions = 0;
    std::size_t insertions = 0;

    /// Shed load until `budget` holds: strip analysis attachments LRU-first
    /// (counting strips into `stripped`), then evict whole entries. Caller
    /// holds the shard mutex.
    void enforce_budget(std::size_t budget,
                        std::atomic<std::size_t>& stripped);
  };

  Shard& shard_for(StepsView key) const {
    return shards_[StepsHash{}(key) & shard_mask_];
  }

  FlowCacheConfig config_;
  std::size_t shard_mask_ = 0;
  std::size_t budget_per_shard_ = 0;
  mutable std::vector<Shard> shards_;
  mutable std::atomic<std::size_t> lookups_{0};
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> steps_saved_{0};
  /// Attachments accepted / attachments lost (stripped or evicted with
  /// their entry) — the analysis_retained() sample.
  mutable std::atomic<std::size_t> analysis_attached_{0};
  mutable std::atomic<std::size_t> analysis_stripped_{0};
};

}  // namespace flowgen::core
