#pragma once
// Cuckoo-hashed in-memory index over (design fingerprint, packed flow key)
// -> QoR, the lookup structure behind core::QorStore. Compared to the
// unordered_map it replaces, every entry lives in one contiguous byte
// arena (exactly the on-disk record payload layout, so segment loads are
// a bulk copy with zero per-record allocations) and the hash table itself
// is two-choice bucketed cuckoo: each key has two candidate buckets of
// four slots, a slot is a 16-bit tag plus an arena offset, and inserts
// displace residents along a bounded kick path. Displacements that exceed
// the kick budget land in a small stash; a stash overflow (or load factor
// past the watermark) doubles the table and rebuilds it from the arena.
// Lookups therefore probe at most 8 slots plus the stash — no chains, no
// rehash-in-place pauses proportional to a bucket chain.
//
// Not thread-safe: QorStore serialises access under its own mutex, exactly
// as it did for the map this replaces.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "aig/aig.hpp"
#include "core/flow.hpp"
#include "map/qor.hpp"

namespace flowgen::core {

struct CuckooIndexConfig {
  /// Initial bucket count; rounded up to a power of two. The defaults are
  /// production values; tests shrink them to force the rehash and
  /// stash-overflow paths at tiny sizes.
  std::size_t initial_buckets = 1024;
  /// Displacements attempted before an insert gives up and stashes.
  std::size_t max_kicks = 256;
  /// Stash entries tolerated before the table grows.
  std::size_t stash_capacity = 8;
};

struct CuckooIndexStats {
  std::size_t entries = 0;        ///< keys stored (arena records)
  std::size_t buckets = 0;        ///< current bucket count (4 slots each)
  std::size_t stash_entries = 0;  ///< keys currently living in the stash
  std::size_t rehashes = 0;       ///< table rebuilds (growth events)
  std::size_t kicks = 0;          ///< total displacements performed
  std::size_t stash_spills = 0;   ///< inserts that exhausted their kicks
  std::size_t arena_bytes = 0;    ///< bytes of key+QoR payload stored
};

class CuckooIndex {
public:
  explicit CuckooIndex(CuckooIndexConfig config = {});

  /// Insert (design, steps) -> qor. Returns false (and stores nothing)
  /// when the key is already present — first record wins, matching the
  /// store's duplicate policy.
  bool insert(const aig::Fingerprint& design, StepsView steps,
              const map::QoR& qor);

  /// QoR for (design, steps), or nullopt.
  std::optional<map::QoR> find(const aig::Fingerprint& design,
                               StepsView steps) const;

  /// Invoke `fn` for every entry of `design`, in arena (insertion) order.
  void for_design(
      const aig::Fingerprint& design,
      const std::function<void(StepsView, const map::QoR&)>& fn) const;

  /// Invoke `fn` for every entry, in arena (insertion) order.
  void for_each(const std::function<void(const aig::Fingerprint&, StepsView,
                                         const map::QoR&)>& fn) const;

  /// Pre-size the arena and table for `n` entries of ~`bytes_per_entry`
  /// bytes so a bulk load performs no growth rebuilds mid-way.
  void reserve(std::size_t n, std::size_t bytes_per_entry = 64);

  std::size_t size() const { return stats_.entries; }
  CuckooIndexStats stats() const;

private:
  /// 16-bit tag in the top bits, arena offset + 1 in the low 48 (0 means
  /// empty). Offsets stay under 2^48 until the arena passes 256 TiB.
  using Slot = std::uint64_t;
  static constexpr std::size_t kSlotsPerBucket = 4;

  struct StashEntry {
    std::uint64_t hash = 0;
    std::uint64_t offset = 0;
  };

  static std::uint64_t mix64(std::uint64_t x);
  static std::uint64_t hash_key(const aig::Fingerprint& design,
                                const std::uint8_t* steps, std::size_t n);
  std::uint64_t hash_entry(std::uint64_t offset) const;

  std::size_t bucket_of(std::uint64_t hash) const;
  std::size_t alt_bucket(std::size_t bucket, std::uint16_t tag) const;
  static std::uint16_t tag_of(std::uint64_t hash) {
    return static_cast<std::uint16_t>(hash >> 48);
  }

  bool entry_matches(std::uint64_t offset, const aig::Fingerprint& design,
                     const std::uint8_t* steps, std::size_t n) const;
  const std::uint8_t* entry(std::uint64_t offset) const {
    return arena_.data() + offset;
  }

  /// Place (hash, offset) into the table, kicking as needed; returns false
  /// when the kick budget is exhausted (caller stashes or rebuilds).
  bool place(std::uint64_t hash, std::uint64_t offset);
  /// Grow the table (×2) and rebuild it from the arena until everything
  /// (stash included) fits.
  void grow_and_rebuild();

  CuckooIndexConfig config_;
  std::vector<Slot> slots_;  ///< buckets_ * kSlotsPerBucket slots
  std::size_t buckets_ = 0;  ///< power of two
  std::vector<StashEntry> stash_;
  std::vector<std::uint8_t> arena_;
  CuckooIndexStats stats_;
};

}  // namespace flowgen::core
