#pragma once
// Quarantine list: the flows a fleet has convicted of poisoning workers.
// The coordinator attributes every worker loss to the flows that were
// undelivered on it; a flow that keeps losing workers is bisected into a
// singleton probe shard and, once it dies *alone* (definitive attribution),
// lands here. Entries are keyed by (design fingerprint, packed flow steps) —
// the same identity the QoR store uses — so a quarantined flow stays
// quarantined across coordinator restarts and is answered without ever
// being dispatched again.
//
// Persistence: a plain-text `QUARANTINE` file next to the QoR store, one
// line per entry ("<design-hex> <steps-hex> <losses> <reason>"), appended
// with O_APPEND semantics and loaded tolerantly (a torn last line from a
// crash is skipped, mirroring the store's torn-tail healing). Text, not
// binary, because operators read this file when a campaign flags a flow.
// A default-constructed list is memory-only for storeless fleets.

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "aig/aig.hpp"
#include "core/flow.hpp"

namespace flowgen::core {

struct QuarantineEntry {
  aig::Fingerprint design{};
  StepsKey steps;
  std::uint32_t losses = 0;  ///< worker losses attributed before conviction
  std::string reason;
};

class QuarantineList {
public:
  /// Memory-only list (no persistence) for storeless coordinators.
  QuarantineList() = default;
  /// File-backed list at `<dir>/QUARANTINE`; loads existing entries.
  /// The directory must exist (it is the QoR store's). Unreadable or
  /// malformed lines are skipped, never fatal — a half-written entry must
  /// not take the fleet down.
  explicit QuarantineList(const std::string& dir);

  QuarantineList(const QuarantineList&) = delete;
  QuarantineList& operator=(const QuarantineList&) = delete;

  bool contains(const aig::Fingerprint& design, StepsView steps) const;

  /// Record a conviction; persists when file-backed. Returns false (and
  /// writes nothing) when the flow is already listed. A persistence
  /// failure keeps the in-memory entry and is reported by log line only:
  /// quarantine must keep protecting the fleet even on a full disk.
  bool add(const aig::Fingerprint& design, StepsView steps,
           std::uint32_t losses, const std::string& reason);

  std::vector<QuarantineEntry> entries() const;
  std::size_t size() const;
  /// Path of the backing file; empty for a memory-only list.
  const std::string& path() const { return path_; }

private:
  struct Key {
    aig::Fingerprint design;
    StepsKey steps;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::size_t h = StepsHash{}(StepsView(k.steps));
      h ^= k.design[0] + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      h ^= k.design[1] + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      return h;
    }
  };

  void load_locked();

  mutable std::mutex mu_;
  std::string path_;
  std::unordered_map<Key, QuarantineEntry, KeyHash> entries_;
};

}  // namespace flowgen::core
