#include "core/evaluator.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "core/qor_store.hpp"
#include "opt/transform.hpp"

namespace flowgen::core {

SynthesisEvaluator::SynthesisEvaluator(aig::Aig design,
                                       const map::CellLibrary& lib,
                                       map::MapperParams mapper_params,
                                       EvaluatorConfig config)
    : design_(std::move(design)),
      design_fp_(design_.fingerprint()),
      registry_(config.registry ? config.registry
                                : opt::TransformRegistry::paper()),
      lib_(lib),
      mapper_params_(mapper_params),
      config_(config) {
  const std::size_t n = round_up_shards(config_.qor_shards);
  shard_mask_ = n - 1;
  shards_ = std::vector<QorShard>(n);
  if (config_.use_prefix_cache) {
    prefix_cache_ = std::make_unique<PrefixFlowCache>(config_.prefix_cache);
  }
  if (config_.share_analysis) {
    design_analysis_ = std::make_shared<aig::AnalysisCache>(design_);
  }
}

map::QoR SynthesisEvaluator::evaluate(const Flow& flow) const {
  const StepsView steps(flow.steps);
  // Alphabet guard before any cache or dispatch sees the bytes: a stray id
  // (hand-built flow, hostile wire peer) is a typed RegistryError here, not
  // undefined dispatch three layers down.
  registry_->validate_steps(steps);
  QorShard& shard = shard_for_flow(steps);
  {
    std::lock_guard lock(shard.mutex);
    if (const auto it = shard.by_flow.find(steps);
        it != shard.by_flow.end()) {
      return it->second;
    }
  }
  const map::QoR qor = evaluate_uncached(steps);
  bool first = false;
  {
    std::lock_guard lock(shard.mutex);
    if (shard.by_flow.emplace(StepsKey(steps.begin(), steps.end()), qor)
            .second) {
      evaluations_.fetch_add(1, std::memory_order_relaxed);
      first = true;
    }
  }
  // Persist outside the shard lock; QorStore::append dedups, so the rare
  // two-threads-race-one-flow case writes the record once either way.
  if (first && store_) store_->append(design_fp_, steps, qor);
  return qor;
}

void SynthesisEvaluator::warm_qor(StepsView steps, const map::QoR& qor) const {
  QorShard& shard = shard_for_flow(steps);
  std::lock_guard lock(shard.mutex);
  shard.by_flow.emplace(StepsKey(steps.begin(), steps.end()), qor);
}

void SynthesisEvaluator::attach_store(std::shared_ptr<QorStore> store) {
  if (store && store->registry_fingerprint() != registry_->fingerprint()) {
    // A store keyed by a different alphabet would warm this evaluator with
    // labels whose step bytes mean different transforms — silently wrong
    // QoR. Typed error instead.
    throw opt::RegistryError(
        "attach_store: QorStore registry fingerprint " +
        opt::registry_fingerprint_hex(store->registry_fingerprint()) +
        " does not match the evaluator's " +
        opt::registry_fingerprint_hex(registry_->fingerprint()));
  }
  store_ = std::move(store);
  if (!store_) return;
  store_->for_design(design_fp_, [this](StepsView steps, const map::QoR& q) {
    warm_qor(steps, q);
  });
}

map::QoR SynthesisEvaluator::evaluate_uncached(StepsView steps) const {
  if (steps.empty()) return map_deduped(design_);
  // Resume from the deepest cached prefix (design_ itself when nothing is
  // cached), then share every intermediate graph with the cache as
  // evaluation produces it. Snapshots are the evaluation's own results
  // moved into shared_ptrs — caching costs no graph copies, only retention.
  //
  // Analysis rides along: the first step consumes the design's shared
  // AnalysisCache (or the snapshot's, on a warm resume), every later step
  // the cache derived from the previous step's damage report, and each
  // snapshot is stored together with its analysis so the N flows branching
  // off a prefix pay for its analysis once.
  std::size_t depth = 0;
  std::shared_ptr<const aig::Aig> cur;          // null = still at design_
  std::shared_ptr<aig::AnalysisCache> cur_an;   // analysis of *cur
  if (prefix_cache_) {
    if (const auto hit = prefix_cache_->longest_prefix(steps); hit.aig) {
      depth = hit.depth;
      cur = hit.aig;
      cur_an = hit.analysis;
      transforms_skipped_.fetch_add(depth, std::memory_order_relaxed);
    }
  }
  // Deriving pays off through the snapshots that carry it to sibling
  // flows; when the byte budget has proven too tight to retain attachments
  // (analysis_retained() collapses), deriving is mostly wasted work and is
  // throttled to a 1-in-64 probe — enough for the retention sample to
  // recover once pressure drops, cheap enough to not matter while it
  // hasn't. A pure performance heuristic: QoR is identical either way
  // because plans are pure.
  bool derive_on = config_.share_analysis;
  if (derive_on && prefix_cache_ && !prefix_cache_->analysis_retained()) {
    derive_on =
        derive_probe_.fetch_add(1, std::memory_order_relaxed) % 64 == 0;
  }
  for (std::size_t i = depth; i < steps.size(); ++i) {
    aig::AnalysisCache* in_analysis =
        cur ? cur_an.get()
            : (config_.share_analysis ? design_analysis_.get() : nullptr);
    // The last graph is mapped, never transformed again, so its analysis
    // would be dead weight.
    const bool derive = derive_on && i + 1 < steps.size();
    opt::AnalyzedTransform r = registry_->apply_analyzed(
        cur ? *cur : design_, steps[i], in_analysis, derive);
    cur = std::make_shared<const aig::Aig>(std::move(r.graph));
    cur_an = std::move(r.analysis);
    transforms_applied_.fetch_add(1, std::memory_order_relaxed);
    // The full flow's graph is not a prefix of anything: skip the last step.
    if (prefix_cache_ && i + 1 < steps.size()) {
      prefix_cache_->insert(steps.subspan(0, i + 1), cur, cur_an);
    }
  }
  return map_deduped(*cur);
}

map::QoR SynthesisEvaluator::map_deduped(const aig::Aig& g) const {
  if (!config_.dedup_mappings) {
    mappings_.fetch_add(1, std::memory_order_relaxed);
    return map::evaluate_qor(g, lib_, mapper_params_);
  }
  const Fingerprint fp = g.fingerprint();
  QorShard& shard = shard_for_fp(fp);
  {
    std::lock_guard lock(shard.mutex);
    if (const auto it = shard.by_fingerprint.find(fp);
        it != shard.by_fingerprint.end()) {
      mappings_deduped_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  const map::QoR qor = map::evaluate_qor(g, lib_, mapper_params_);
  mappings_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(shard.mutex);
    shard.by_fingerprint.emplace(fp, qor);
  }
  return qor;
}

std::vector<map::QoR> SynthesisEvaluator::evaluate_many(
    std::span<const Flow> flows, util::ThreadPool* pool) const {
  std::vector<map::QoR> out(flows.size());
  // Lexicographic step order puts flows sharing a prefix back to back, so
  // each one resumes from the snapshot its predecessor just wrote.
  std::vector<std::size_t> order(flows.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return flows[a].steps < flows[b].steps;
  });
  if (pool == nullptr || pool->size() <= 1 || flows.size() <= 1) {
    for (const std::size_t idx : order) out[idx] = evaluate(flows[idx]);
    return out;
  }
  // Contiguous groups of the sorted order keep prefix locality within one
  // worker; a few groups per worker give the dynamic scheduler slack for
  // uneven flow runtimes.
  const std::size_t groups =
      std::min(flows.size(), pool->size() * 4);
  pool->parallel_for(groups, [&](std::size_t gi) {
    const std::size_t begin = gi * order.size() / groups;
    const std::size_t end = (gi + 1) * order.size() / groups;
    for (std::size_t i = begin; i < end; ++i) {
      out[order[i]] = evaluate(flows[order[i]]);
    }
  });
  return out;
}

map::QoR SynthesisEvaluator::baseline() const { return evaluate(Flow{}); }

std::size_t SynthesisEvaluator::cache_size() const {
  std::size_t total = 0;
  for (const QorShard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    total += shard.by_flow.size();
  }
  return total;
}

EvaluatorStats SynthesisEvaluator::stats() const {
  EvaluatorStats s;
  s.evaluations = evaluations_.load(std::memory_order_relaxed);
  s.transforms_applied = transforms_applied_.load(std::memory_order_relaxed);
  s.transforms_skipped = transforms_skipped_.load(std::memory_order_relaxed);
  s.mappings = mappings_.load(std::memory_order_relaxed);
  s.mappings_deduped = mappings_deduped_.load(std::memory_order_relaxed);
  if (prefix_cache_) s.prefix = prefix_cache_->stats();
  return s;
}

}  // namespace flowgen::core
