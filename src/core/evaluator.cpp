#include "core/evaluator.hpp"

#include <algorithm>
#include <bit>
#include <mutex>
#include <numeric>

#include "aig/analysis.hpp"
#include "core/qor_store.hpp"
#include "opt/transform.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/log.hpp"

namespace flowgen::core {

namespace {

/// The process-wide analysis counters live in aig/, not in any evaluator;
/// export them as a pull-model collector so every scrape sees the current
/// totals without the evaluator mirroring nine more atomics.
void register_analysis_collector() {
  static std::once_flag once;
  std::call_once(once, [] {
    telemetry::register_collector([] {
      const aig::AnalysisCounters c = aig::analysis_counters();
      std::string out;
      const auto emit = [&out](const char* name, const char* help,
                               std::size_t v) {
        out += "# HELP ";
        out += name;
        out += ' ';
        out += help;
        out += "\n# TYPE ";
        out += name;
        out += " counter\n";
        out += name;
        out += ' ';
        out += std::to_string(v);
        out += '\n';
      };
      emit("flowgen_analysis_windows_computed_total",
           "Resubstitution windows computed from scratch", c.windows_computed);
      emit("flowgen_analysis_windows_carried_total",
           "Windows carried across a transform via the damage report",
           c.windows_carried);
      emit("flowgen_analysis_resub_plans_computed_total",
           "Resubstitution plans computed", c.resub_plans_computed);
      emit("flowgen_analysis_resub_plans_carried_total",
           "Resubstitution plans reused from a carried analysis",
           c.resub_plans_carried);
      emit("flowgen_analysis_factor_plans_computed_total",
           "Factoring plans computed", c.factor_plans_computed);
      emit("flowgen_analysis_factor_plans_carried_total",
           "Factoring plans reused from a carried analysis",
           c.factor_plans_carried);
      emit("flowgen_analysis_factor_memo_hits_total",
           "Factoring expression memo hits", c.factor_memo_hits);
      emit("flowgen_analysis_cut_nodes_computed_total",
           "Nodes whose cut sets were computed", c.cut_nodes_computed);
      emit("flowgen_analysis_cut_nodes_carried_total",
           "Nodes whose cut sets were carried", c.cut_nodes_carried);
      return out;
    });
  });
}

}  // namespace

SynthesisEvaluator::SynthesisEvaluator(aig::Aig design,
                                       const map::CellLibrary& lib,
                                       map::MapperParams mapper_params,
                                       EvaluatorConfig config)
    : design_(std::move(design)),
      design_fp_(design_.fingerprint()),
      registry_(config.registry ? config.registry
                                : opt::TransformRegistry::paper()),
      lib_(lib),
      mapper_params_(mapper_params),
      config_(config) {
  const std::size_t n = round_up_shards(config_.qor_shards);
  shard_mask_ = n - 1;
  shards_ = std::vector<QorShard>(n);
  if (config_.use_prefix_cache) {
    prefix_cache_ = std::make_unique<PrefixFlowCache>(config_.prefix_cache);
  }
  if (config_.share_analysis) {
    design_analysis_ = std::make_shared<aig::AnalysisCache>(design_);
  }

  register_analysis_collector();
  tm_evaluations_ = &telemetry::counter(
      "flowgen_evaluations_total", "Flow-level QoR cache misses evaluated");
  tm_transforms_applied_ = &telemetry::counter(
      "flowgen_transforms_applied_total", "Transform passes actually run");
  tm_transforms_skipped_ = &telemetry::counter(
      "flowgen_transforms_skipped_total",
      "Transform passes saved by prefix snapshots");
  tm_mappings_ = &telemetry::counter("flowgen_mappings_total",
                                     "Technology mappings actually run");
  tm_mappings_deduped_ = &telemetry::counter(
      "flowgen_mappings_deduped_total",
      "Mappings served by structural-fingerprint dedup");
  // Transforms and mapping sit well under a second on bench designs; a
  // finer grid than the serve-path default resolves the warm/cold split.
  const std::vector<double> fine_ms = telemetry::exp_buckets(0.005, 2.0, 18);
  tm_mapping_ms_ = &telemetry::histogram(
      "flowgen_mapping_ms", "Technology mapping latency (ms)", fine_ms);
  tm_spec_ms_warm_.resize(registry_->size());
  tm_spec_ms_cold_.resize(registry_->size());
  for (std::size_t i = 0; i < registry_->size(); ++i) {
    const std::string& spec = registry_->name(static_cast<opt::StepId>(i));
    tm_spec_ms_warm_[i] = &telemetry::histogram(
        "flowgen_transform_ms", "Transform pass latency (ms) by spec",
        fine_ms, {{"spec", spec}, {"analysis", "warm"}});
    tm_spec_ms_cold_[i] = &telemetry::histogram(
        "flowgen_transform_ms", "Transform pass latency (ms) by spec",
        fine_ms, {{"spec", spec}, {"analysis", "cold"}});
  }
}

map::QoR SynthesisEvaluator::evaluate(const Flow& flow) const {
  const StepsView steps(flow.steps);
  // Alphabet guard before any cache or dispatch sees the bytes: a stray id
  // (hand-built flow, hostile wire peer) is a typed RegistryError here, not
  // undefined dispatch three layers down.
  registry_->validate_steps(steps);
  QorShard& shard = shard_for_flow(steps);
  {
    std::lock_guard lock(shard.mutex);
    if (const auto it = shard.by_flow.find(steps);
        it != shard.by_flow.end()) {
      return it->second;
    }
  }
  // Labels load lazily: the store answers a cache miss before any
  // synthesis runs, so attaching a 10^6-record store costs nothing up
  // front and a rerun of a fully labeled batch performs zero evaluations.
  if (store_) {
    if (const auto stored = store_->lookup(design_fp_, steps)) {
      warm_qor(steps, *stored);
      return *stored;
    }
  }
  const map::QoR qor = evaluate_uncached(steps);
  bool first = false;
  {
    std::lock_guard lock(shard.mutex);
    if (shard.by_flow.emplace(StepsKey(steps.begin(), steps.end()), qor)
            .second) {
      evaluations_.fetch_add(1, std::memory_order_relaxed);
      tm_evaluations_->inc();
      first = true;
    }
  }
  // Persist outside the shard lock; QorStore::append dedups, so the rare
  // two-threads-race-one-flow case writes the record once either way.
  // A failed append (disk full, I/O error) degrades to "not persisted":
  // the label itself is correct and already cached, so returning it beats
  // failing the evaluation — the record is simply re-earned next run.
  if (first && store_) {
    try {
      store_->append(design_fp_, steps, qor);
    } catch (const std::exception& e) {
      util::log_warn("evaluator: QoR store append failed (label kept "
                     "in-memory): ",
                     e.what());
    }
  }
  return qor;
}

void SynthesisEvaluator::warm_qor(StepsView steps, const map::QoR& qor) const {
  QorShard& shard = shard_for_flow(steps);
  std::lock_guard lock(shard.mutex);
  shard.by_flow.emplace(StepsKey(steps.begin(), steps.end()), qor);
}

void SynthesisEvaluator::attach_store(std::shared_ptr<QorStore> store) {
  if (store && store->registry_fingerprint() != registry_->fingerprint()) {
    // A store keyed by a different alphabet would warm this evaluator with
    // labels whose step bytes mean different transforms — silently wrong
    // QoR. Typed error instead.
    throw opt::RegistryError(
        "attach_store: QorStore registry fingerprint " +
        opt::registry_fingerprint_hex(store->registry_fingerprint()) +
        " does not match the evaluator's " +
        opt::registry_fingerprint_hex(registry_->fingerprint()));
  }
  store_ = std::move(store);
  // No eager pre-warm: evaluate() consults the store on each cache miss,
  // so attach stays O(1) no matter how many records the store holds.
}

map::QoR SynthesisEvaluator::evaluate_uncached(StepsView steps) const {
  if (steps.empty()) return map_deduped(design_);
  telemetry::Span span("eval", "evaluate_flow");
  // Resume from the deepest cached prefix (design_ itself when nothing is
  // cached), then share every intermediate graph with the cache as
  // evaluation produces it. Snapshots are the evaluation's own results
  // moved into shared_ptrs — caching costs no graph copies, only retention.
  //
  // Analysis rides along: the first step consumes the design's shared
  // AnalysisCache (or the snapshot's, on a warm resume), every later step
  // the cache derived from the previous step's damage report, and each
  // snapshot is stored together with its analysis so the N flows branching
  // off a prefix pay for its analysis once.
  std::size_t depth = 0;
  std::shared_ptr<const aig::Aig> cur;          // null = still at design_
  std::shared_ptr<aig::AnalysisCache> cur_an;   // analysis of *cur
  if (prefix_cache_) {
    if (const auto hit = prefix_cache_->longest_prefix(steps); hit.aig) {
      depth = hit.depth;
      cur = hit.aig;
      cur_an = hit.analysis;
      transforms_skipped_.fetch_add(depth, std::memory_order_relaxed);
      tm_transforms_skipped_->inc(depth);
    }
  }
  span.arg("steps", static_cast<std::uint64_t>(steps.size()));
  span.arg("resumed_at", static_cast<std::uint64_t>(depth));
  // Deriving pays off through the snapshots that carry it to sibling
  // flows; when the byte budget has proven too tight to retain attachments
  // (analysis_retained() collapses), deriving is mostly wasted work and is
  // throttled to a 1-in-64 probe — enough for the retention sample to
  // recover once pressure drops, cheap enough to not matter while it
  // hasn't. A pure performance heuristic: QoR is identical either way
  // because plans are pure.
  bool derive_on = config_.share_analysis;
  if (derive_on && prefix_cache_ && !prefix_cache_->analysis_retained()) {
    derive_on =
        derive_probe_.fetch_add(1, std::memory_order_relaxed) % 64 == 0;
  }
  const bool timed = telemetry::enabled();
  for (std::size_t i = depth; i < steps.size(); ++i) {
    aig::AnalysisCache* in_analysis =
        cur ? cur_an.get()
            : (config_.share_analysis ? design_analysis_.get() : nullptr);
    // The last graph is mapped, never transformed again, so its analysis
    // would be dead weight.
    const bool derive = derive_on && i + 1 < steps.size();
    const std::uint64_t t0 = timed ? telemetry::trace_now_us() : 0;
    opt::AnalyzedTransform r = registry_->apply_analyzed(
        cur ? *cur : design_, steps[i], in_analysis, derive);
    if (timed) {
      const double ms =
          static_cast<double>(telemetry::trace_now_us() - t0) / 1000.0;
      (in_analysis ? tm_spec_ms_warm_ : tm_spec_ms_cold_)[steps[i]]->observe(
          ms);
    }
    cur = std::make_shared<const aig::Aig>(std::move(r.graph));
    cur_an = std::move(r.analysis);
    transforms_applied_.fetch_add(1, std::memory_order_relaxed);
    tm_transforms_applied_->inc();
    // The full flow's graph is not a prefix of anything: skip the last step.
    if (prefix_cache_ && i + 1 < steps.size()) {
      prefix_cache_->insert(steps.subspan(0, i + 1), cur, cur_an);
    }
  }
  return map_deduped(*cur);
}

map::QoR SynthesisEvaluator::map_deduped(const aig::Aig& g) const {
  const bool timed = telemetry::enabled();
  if (!config_.dedup_mappings) {
    mappings_.fetch_add(1, std::memory_order_relaxed);
    tm_mappings_->inc();
    telemetry::Span span("eval", "map");
    const std::uint64_t t0 = timed ? telemetry::trace_now_us() : 0;
    const map::QoR qor = map::evaluate_qor(g, lib_, mapper_params_);
    if (timed) {
      tm_mapping_ms_->observe(
          static_cast<double>(telemetry::trace_now_us() - t0) / 1000.0);
    }
    return qor;
  }
  const Fingerprint fp = g.fingerprint();
  QorShard& shard = shard_for_fp(fp);
  {
    std::lock_guard lock(shard.mutex);
    if (const auto it = shard.by_fingerprint.find(fp);
        it != shard.by_fingerprint.end()) {
      mappings_deduped_.fetch_add(1, std::memory_order_relaxed);
      tm_mappings_deduped_->inc();
      return it->second;
    }
  }
  telemetry::Span span("eval", "map");
  const std::uint64_t t0 = timed ? telemetry::trace_now_us() : 0;
  const map::QoR qor = map::evaluate_qor(g, lib_, mapper_params_);
  if (timed) {
    tm_mapping_ms_->observe(
        static_cast<double>(telemetry::trace_now_us() - t0) / 1000.0);
  }
  mappings_.fetch_add(1, std::memory_order_relaxed);
  tm_mappings_->inc();
  {
    std::lock_guard lock(shard.mutex);
    shard.by_fingerprint.emplace(fp, qor);
  }
  return qor;
}

std::vector<map::QoR> SynthesisEvaluator::evaluate_many(
    std::span<const Flow> flows, util::ThreadPool* pool) const {
  std::vector<map::QoR> out(flows.size());
  // Lexicographic step order puts flows sharing a prefix back to back, so
  // each one resumes from the snapshot its predecessor just wrote.
  std::vector<std::size_t> order(flows.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return flows[a].steps < flows[b].steps;
  });
  if (pool == nullptr || pool->size() <= 1 || flows.size() <= 1) {
    for (const std::size_t idx : order) out[idx] = evaluate(flows[idx]);
    return out;
  }
  // Contiguous groups of the sorted order keep prefix locality within one
  // worker; a few groups per worker give the dynamic scheduler slack for
  // uneven flow runtimes.
  const std::size_t groups =
      std::min(flows.size(), pool->size() * 4);
  pool->parallel_for(groups, [&](std::size_t gi) {
    const std::size_t begin = gi * order.size() / groups;
    const std::size_t end = (gi + 1) * order.size() / groups;
    for (std::size_t i = begin; i < end; ++i) {
      out[order[i]] = evaluate(flows[order[i]]);
    }
  });
  return out;
}

map::QoR SynthesisEvaluator::baseline() const { return evaluate(Flow{}); }

std::size_t SynthesisEvaluator::cache_size() const {
  std::size_t total = 0;
  for (const QorShard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    total += shard.by_flow.size();
  }
  return total;
}

EvaluatorStats SynthesisEvaluator::stats() const {
  EvaluatorStats s;
  s.evaluations = evaluations_.load(std::memory_order_relaxed);
  s.transforms_applied = transforms_applied_.load(std::memory_order_relaxed);
  s.transforms_skipped = transforms_skipped_.load(std::memory_order_relaxed);
  s.mappings = mappings_.load(std::memory_order_relaxed);
  s.mappings_deduped = mappings_deduped_.load(std::memory_order_relaxed);
  if (prefix_cache_) s.prefix = prefix_cache_->stats();
  return s;
}

}  // namespace flowgen::core
