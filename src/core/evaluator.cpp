#include "core/evaluator.hpp"

#include "opt/transform.hpp"

namespace flowgen::core {

SynthesisEvaluator::SynthesisEvaluator(aig::Aig design,
                                       const map::CellLibrary& lib,
                                       map::MapperParams mapper_params)
    : design_(std::move(design)), lib_(lib), mapper_params_(mapper_params) {}

map::QoR SynthesisEvaluator::evaluate(const Flow& flow) const {
  const std::string key = flow.key();
  {
    std::lock_guard lock(mutex_);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      return it->second;
    }
  }
  const aig::Aig synthesized = opt::apply_flow(design_, flow.steps);
  const map::QoR qor = map::evaluate_qor(synthesized, lib_, mapper_params_);
  {
    std::lock_guard lock(mutex_);
    ++evaluations_;
    cache_.emplace(key, qor);
  }
  return qor;
}

std::vector<map::QoR> SynthesisEvaluator::evaluate_many(
    std::span<const Flow> flows, util::ThreadPool* pool) const {
  std::vector<map::QoR> out(flows.size());
  if (pool == nullptr) {
    for (std::size_t i = 0; i < flows.size(); ++i) {
      out[i] = evaluate(flows[i]);
    }
    return out;
  }
  pool->parallel_for(flows.size(),
                     [&](std::size_t i) { out[i] = evaluate(flows[i]); });
  return out;
}

map::QoR SynthesisEvaluator::baseline() const { return evaluate(Flow{}); }

std::size_t SynthesisEvaluator::cache_size() const {
  std::lock_guard lock(mutex_);
  return cache_.size();
}

}  // namespace flowgen::core
