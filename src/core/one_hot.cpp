#include "core/one_hot.hpp"

#include <cmath>
#include <stdexcept>

namespace flowgen::core {

nn::Tensor one_hot_matrix(const Flow& flow, std::size_t num_transforms) {
  nn::Tensor t({flow.length(), num_transforms});
  for (std::size_t j = 0; j < flow.length(); ++j) {
    const auto col = static_cast<std::size_t>(flow.steps[j]);
    if (col >= num_transforms) {
      throw std::invalid_argument("one_hot_matrix: transform out of range");
    }
    t.at(j, col) = 1.0;
  }
  return t;
}

void default_reshape(std::size_t length, std::size_t num_transforms,
                     std::size_t& height, std::size_t& width) {
  const std::size_t total = length * num_transforms;
  const auto root = static_cast<std::size_t>(std::lround(std::sqrt(
      static_cast<double>(total))));
  if (root * root == total) {
    height = width = root;
  } else {
    height = length;
    width = num_transforms;
  }
}

nn::Tensor one_hot_matrix(const Flow& flow,
                          const opt::TransformRegistry& registry) {
  registry.validate_steps(flow.steps);
  return one_hot_matrix(flow, registry.size());
}

nn::Tensor one_hot_batch(std::span<const Flow> flows,
                         const opt::TransformRegistry& registry,
                         std::size_t height, std::size_t width) {
  for (const Flow& f : flows) registry.validate_steps(f.steps);
  return one_hot_batch(flows, registry.size(), height, width);
}

nn::Tensor one_hot_batch(std::span<const Flow> flows,
                         std::size_t num_transforms, std::size_t height,
                         std::size_t width) {
  nn::Tensor batch({flows.size(), height, width, 1});
  const std::size_t plane = height * width;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].length() * num_transforms != plane) {
      throw std::invalid_argument("one_hot_batch: reshape size mismatch");
    }
    for (std::size_t j = 0; j < flows[i].length(); ++j) {
      const auto col = static_cast<std::size_t>(flows[i].steps[j]);
      batch[i * plane + j * num_transforms + col] = 1.0;
    }
  }
  return batch;
}

}  // namespace flowgen::core
