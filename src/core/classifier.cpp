#include "core/classifier.hpp"

#include <cassert>
#include <stdexcept>

namespace flowgen::core {

CnnFlowClassifier::CnnFlowClassifier(const ClassifierConfig& config)
    : config_(config), rng_(config.seed) {
  default_reshape(config_.flow_length, config_.num_transforms, input_h_,
                  input_w_);

  const auto act = config_.activation;
  model_.emplace<nn::Conv2D>(1, config_.conv_filters, config_.kernel_h,
                             config_.kernel_w, rng_);
  model_.emplace<nn::Activation>(act);
  model_.emplace<nn::MaxPool2D>(2, 2, 1);
  model_.emplace<nn::Conv2D>(config_.conv_filters, config_.conv_filters,
                             config_.kernel_h, config_.kernel_w, rng_);
  model_.emplace<nn::Activation>(act);
  model_.emplace<nn::MaxPool2D>(2, 2, 1);

  // Spatial size after two stride-1 'same' convs and two 2x2 pools.
  const std::size_t h = input_h_ - 2;
  const std::size_t w = input_w_ - 2;
  if (h < config_.local_kernel || w < config_.local_kernel) {
    throw std::invalid_argument(
        "CnnFlowClassifier: input too small for the local layer");
  }
  model_.emplace<nn::LocallyConnected2D>(h, w, config_.conv_filters,
                                         config_.local_filters,
                                         config_.local_kernel,
                                         config_.local_kernel, rng_);
  model_.emplace<nn::Activation>(act);
  model_.emplace<nn::Flatten>();
  const std::size_t flat = (h - config_.local_kernel + 1) *
                           (w - config_.local_kernel + 1) *
                           config_.local_filters;
  model_.emplace<nn::Dense>(flat, config_.dense_units, rng_);
  model_.emplace<nn::Activation>(act);
  model_.emplace<nn::Dropout>(config_.dropout_rate, rng_);
  model_.emplace<nn::Dense>(config_.dense_units, config_.num_classes, rng_);
}

nn::Tensor CnnFlowClassifier::encode(std::span<const Flow> flows) const {
  return one_hot_batch(flows, config_.num_transforms, input_h_, input_w_);
}

double CnnFlowClassifier::train_batch(std::span<const Flow> flows,
                                      std::span<const std::uint32_t> labels,
                                      nn::Optimizer& optimizer) {
  assert(flows.size() == labels.size());
  const nn::Tensor input = encode(flows);
  const std::vector<std::uint32_t> label_vec(labels.begin(), labels.end());
  return model_.train_batch(input, label_vec, optimizer);
}

nn::Tensor CnnFlowClassifier::predict_proba(std::span<const Flow> flows) {
  return model_.predict_proba(encode(flows));
}

std::vector<std::uint32_t> CnnFlowClassifier::predict(
    std::span<const Flow> flows) {
  return nn::argmax_rows(predict_proba(flows));
}

double CnnFlowClassifier::accuracy(std::span<const Flow> flows,
                                   std::span<const std::uint32_t> labels) {
  const std::vector<std::uint32_t> label_vec(labels.begin(), labels.end());
  return model_.evaluate_accuracy(encode(flows), label_vec);
}

}  // namespace flowgen::core
