#pragma once
// The fully autonomous framework of Figure 2, end to end:
//   (1) label random flows by synthesizing + mapping them (incremental:
//       first 1000, then every 500 — configurable),
//   (2) (re)train the CNN classifier on the labeled set,
//   (3) predict a large pool of untested flows and emit the angel-flows
//       (class 0, highest confidence) and devil-flows (class n).
//
// The paper's accuracy metric is reproduced exactly:
//   accuracy = (N_angel + N_devil) / (num_angel + num_devil)
// where N_angel counts generated angel-flows whose *true* class is 0 and
// N_devil counts generated devil-flows whose true class is n, with true
// classes obtained by actually synthesizing the selected flows.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "core/classifier.hpp"
#include "core/evaluator.hpp"
#include "core/flow_evaluator.hpp"
#include "core/flow_space.hpp"
#include "core/labeler.hpp"
#include "core/selection.hpp"
#include "service/service_config.hpp"
#include "util/thread_pool.hpp"

namespace flowgen::core {

struct PipelineConfig {
  // Dataset sizes. Paper scale: 10000 training flows, 100000 sample flows,
  // 200 angel + 200 devil. Defaults here are laptop scale; benches raise
  // them under --full.
  std::size_t training_flows = 600;
  std::size_t sample_flows = 4000;
  std::size_t initial_labeled = 200;   ///< paper: 1000
  std::size_t retrain_every = 100;     ///< paper: 500
  std::size_t num_angel = 50;          ///< paper: 200
  std::size_t num_devil = 50;          ///< paper: 200

  // Training (paper: RMSProp, eta = 1e-4, batch 5, 100000 steps total).
  std::string optimizer = "RMSProp";
  double learning_rate = 1e-4;
  std::size_t batch_size = 5;
  std::size_t steps_per_round = 400;
  double holdout_fraction = 0.1;

  unsigned repetitions = 4;  ///< m; L = n * m
  /// Transform alphabet the whole pipeline runs over: flow space, one-hot
  /// width, classifier input shape, evaluator dispatch, store keys and the
  /// wire all follow it. Null = the paper's 6-transform registry.
  std::shared_ptr<const opt::TransformRegistry> registry;
  LabelerConfig labeler;
  ClassifierConfig classifier;

  std::uint64_t seed = 1;
  std::size_t threads = 0;  ///< 0 = hardware concurrency

  /// When true, the paper-accuracy probe (select + synthesize the selected
  /// flows) runs after every retraining round, producing the accuracy-vs-
  /// progress curves of Figures 4-7. The evaluator cache keeps this cheap.
  bool probe_accuracy_each_round = false;
  std::size_t prediction_chunk = 256;

  /// Where labeling synthesis runs: in-process by default; loopback worker
  /// processes or a remote evald fleet when configured (set `design_id`).
  service::EvalServiceConfig service;

  /// Load the design from a netlist file (aig/reader BLIF) instead of
  /// passing a built graph: the FlowGenPipeline(PipelineConfig) constructor
  /// reads this path, and distributed modes ship the loaded netlist to the
  /// fleet via LoadDesign — off-registry designs end to end from files.
  std::string design_file;

  /// Non-empty enables Chrome-trace-event capture for the run: run() calls
  /// telemetry::start_tracing(trace_file) and every round emits labeling /
  /// training / probe spans alongside the evaluator's per-transform spans.
  /// Load the file in Perfetto (docs/observability.md).
  std::string trace_file;
};

struct RoundStats {
  std::size_t round = 0;
  std::size_t labeled = 0;
  double mean_train_loss = 0.0;
  double holdout_accuracy = 0.0;
  /// Paper metric; only populated when probing is enabled (else -1).
  double paper_accuracy = -1.0;
  double synthesis_seconds = 0.0;
  double train_seconds = 0.0;
  /// Cumulative wall-clock of the run so far ("training time" axis).
  double elapsed_seconds = 0.0;
};

struct PipelineResult {
  std::vector<Flow> angel_flows;
  std::vector<map::QoR> angel_qor;
  std::vector<Flow> devil_flows;
  std::vector<map::QoR> devil_qor;

  std::vector<Flow> labeled_flows;
  std::vector<map::QoR> labeled_qor;

  std::vector<RoundStats> history;
  double paper_accuracy = 0.0;
  map::QoR baseline;
};

class FlowGenPipeline {
public:
  /// `design` feeds the in-process evaluator. When `config.service`
  /// selects distributed evaluation, workers either rebuild the design
  /// from `config.service.design_id` via the registry (`design` is then
  /// only fingerprint-checked against that id — mismatch throws — and
  /// dropped), or, when design_id is empty, receive `design` itself as a
  /// serialized netlist (protocol v2 LoadDesign) — the path for circuits
  /// no registry knows.
  FlowGenPipeline(aig::Aig design, PipelineConfig config);

  /// File-ingest form: loads `config.design_file` via aig::read_blif_file
  /// (throws std::invalid_argument when the path is empty, the reader's
  /// error when it is unreadable) and proceeds as above — the path for
  /// designs that exist only as netlist files.
  explicit FlowGenPipeline(PipelineConfig config);

  /// Observe per-round statistics as they are produced.
  void set_round_callback(std::function<void(const RoundStats&)> cb) {
    round_callback_ = std::move(cb);
  }

  PipelineResult run();

  const FlowEvaluator& evaluator() const { return *evaluator_; }
  const FlowSpace& space() const { return space_; }

private:
  PipelineConfig config_;
  std::unique_ptr<FlowEvaluator> evaluator_;
  FlowSpace space_;
  util::Rng rng_;
  std::function<void(const RoundStats&)> round_callback_;
};

}  // namespace flowgen::core
