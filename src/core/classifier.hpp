#pragma once
// Component (2) of the framework: the CNN flow classifier of Figure 3.
// Architecture: one-hot (L x n) reshaped to (H x W) -> Conv(kh x kw, F) ->
// MaxPool(2x2, stride 1) -> Conv -> MaxPool -> LocallyConnected ->
// Dense -> Dropout(0.4) -> Dense(num_classes) -> softmax (in the loss).
// Kernel shape, activation, filter count and optimizer are configurable —
// they are exactly the axes the paper ablates in Figures 4-7.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "core/one_hot.hpp"
#include "nn/conv2d.hpp"
#include "nn/locally_connected.hpp"
#include "nn/model.hpp"
#include "nn/pooling.hpp"
#include "util/rng.hpp"

namespace flowgen::core {

struct ClassifierConfig {
  std::size_t flow_length = 24;     ///< L = n * m
  std::size_t num_transforms = 6;   ///< n
  std::size_t num_classes = 7;

  // Paper settings: 200 filters, kernel n x 2n (6x12 best), SELU, batch 5.
  std::size_t conv_filters = 200;
  std::size_t kernel_h = 6;
  std::size_t kernel_w = 12;
  std::size_t local_filters = 32;
  std::size_t local_kernel = 3;
  std::size_t dense_units = 64;
  double dropout_rate = 0.4;
  nn::ActivationKind activation = nn::ActivationKind::kSELU;

  std::uint64_t seed = 1;
};

class CnnFlowClassifier {
public:
  explicit CnnFlowClassifier(const ClassifierConfig& config);

  const ClassifierConfig& config() const { return config_; }
  std::size_t num_parameters() { return model_.num_parameters(); }

  /// One mini-batch training step on already-encoded labels.
  double train_batch(std::span<const Flow> flows,
                     std::span<const std::uint32_t> labels,
                     nn::Optimizer& optimizer);

  /// Class probabilities, one row per flow (softmax output).
  nn::Tensor predict_proba(std::span<const Flow> flows);

  /// Argmax classes.
  std::vector<std::uint32_t> predict(std::span<const Flow> flows);

  /// Fraction of flows classified into their true class.
  double accuracy(std::span<const Flow> flows,
                  std::span<const std::uint32_t> labels);

private:
  nn::Tensor encode(std::span<const Flow> flows) const;

  ClassifierConfig config_;
  std::size_t input_h_ = 0, input_w_ = 0;
  util::Rng rng_;
  nn::Sequential model_;
};

}  // namespace flowgen::core
