#pragma once
// The search space of Section 2.1: m-repetition flows over a transform
// alphabet. Provides uniform sampling of unique flows and the exact
// counting function f(n, L, m) of Remark 3 (Mendelson's limited-repetition
// permutations), evaluated in 128-bit arithmetic. The alphabet is a
// TransformRegistry (default: the paper's 6-transform set) or any subset of
// its step ids, so one registry can back several nested spaces.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "util/rng.hpp"

namespace flowgen::core {

using U128 = unsigned __int128;

std::string u128_to_string(U128 v);

/// Number of L-permutations of n objects where each object may appear at
/// most m times (Remark 3 recursion):
///   f(n, L+1, m) = n f(n, L, m) - n C(L, m) f(n-1, L-m, m)
/// Throws std::overflow_error if the value exceeds 128 bits.
U128 count_limited_permutations(unsigned n, unsigned length, unsigned m);

/// Remark 1 of the paper: constraints shrink the space below n!. A
/// constraint (before, after) requires every occurrence of `before` to
/// precede every occurrence of `after`.
struct PrecedenceConstraint {
  opt::StepId before;
  opt::StepId after;
};

class FlowSpace {
public:
  /// m-repetition space over the whole of `registry` (default: the paper's
  /// S). Step ids are positions in that registry.
  explicit FlowSpace(unsigned m,
                     std::shared_ptr<const opt::TransformRegistry> registry =
                         opt::TransformRegistry::paper());

  /// m-repetition space over a subset of `registry`'s ids. Throws
  /// opt::RegistryError when any id is out of range for the registry.
  FlowSpace(unsigned m, std::vector<opt::StepId> transforms,
            std::shared_ptr<const opt::TransformRegistry> registry =
                opt::TransformRegistry::paper());

  /// Restrict the space (Remark 1). Sampling honours constraints by
  /// rejection; `contains` checks them.
  void add_constraint(PrecedenceConstraint c) {
    constraints_.push_back(c);
  }
  const std::vector<PrecedenceConstraint>& constraints() const {
    return constraints_;
  }
  bool satisfies_constraints(const Flow& flow) const;

  unsigned num_transforms() const {
    return static_cast<unsigned>(transforms_.size());
  }
  unsigned repetitions() const { return m_; }
  /// L = n * m (Remark 2).
  unsigned length() const { return num_transforms() * m_; }
  const std::vector<opt::StepId>& transforms() const {
    return transforms_;
  }
  /// The registry whose step ids this space samples.
  const opt::TransformRegistry& registry() const { return *registry_; }
  const std::shared_ptr<const opt::TransformRegistry>& registry_ptr() const {
    return registry_;
  }

  /// Exact size of the space: f(n, n*m, m) = (nm)! / (m!)^n.
  U128 size() const;

  /// Uniformly random m-repetition flow (Fisher-Yates over the multiset).
  Flow random_flow(util::Rng& rng) const;

  /// `count` distinct random flows. Throws std::invalid_argument when count
  /// exceeds the space size.
  std::vector<Flow> sample_unique(std::size_t count, util::Rng& rng) const;

  /// True iff `flow` belongs to this space (right length, each transform
  /// exactly m times).
  bool contains(const Flow& flow) const;

private:
  unsigned m_;
  std::shared_ptr<const opt::TransformRegistry> registry_;
  std::vector<opt::StepId> transforms_;
  std::vector<PrecedenceConstraint> constraints_;
};

}  // namespace flowgen::core
