#include "core/selection.hpp"

#include <algorithm>
#include <cassert>

#include "nn/model.hpp"

namespace flowgen::core {

std::vector<RankedFlow> select_top_flows(const nn::Tensor& probabilities,
                                         std::uint32_t target_class,
                                         std::size_t count) {
  assert(probabilities.rank() == 2);
  const std::size_t n = probabilities.dim(0);
  const std::size_t c = probabilities.dim(1);
  assert(target_class < c);
  (void)c;

  std::vector<RankedFlow> ranked;
  ranked.reserve(n);
  const std::vector<std::uint32_t> argmax = nn::argmax_rows(probabilities);
  for (std::size_t i = 0; i < n; ++i) {
    ranked.push_back(RankedFlow{
        i, probabilities.at(i, target_class), argmax[i]});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](const RankedFlow& a, const RankedFlow& b) {
                     const bool a_in = a.predicted == target_class;
                     const bool b_in = b.predicted == target_class;
                     if (a_in != b_in) return a_in;
                     return a.confidence > b.confidence;
                   });
  if (ranked.size() > count) ranked.resize(count);
  return ranked;
}

SelectionProbe probe_selection_accuracy(CnnFlowClassifier& classifier,
                                        const Labeler& labeler,
                                        const std::vector<Flow>& pool,
                                        const FlowEvaluator& evaluator,
                                        std::size_t per_side,
                                        util::ThreadPool* threads,
                                        std::size_t chunk) {
  SelectionProbe probe;
  const std::size_t classes = labeler.num_classes();
  nn::Tensor probs({pool.size(), classes});
  for (std::size_t start = 0; start < pool.size(); start += chunk) {
    const std::size_t end = std::min(pool.size(), start + chunk);
    const nn::Tensor part = classifier.predict_proba(
        std::span<const Flow>(pool.data() + start, end - start));
    for (std::size_t i = 0; i < end - start; ++i) {
      for (std::size_t c = 0; c < classes; ++c) {
        probs.at(start + i, c) = part.at(i, c);
      }
    }
  }
  const auto devil_class = static_cast<std::uint32_t>(classes - 1);
  probe.angel = select_top_flows(probs, 0, per_side);
  probe.devil = select_top_flows(probs, devil_class, per_side);

  std::vector<Flow> chosen;
  chosen.reserve(probe.angel.size() + probe.devil.size());
  for (const RankedFlow& r : probe.angel) chosen.push_back(pool[r.index]);
  for (const RankedFlow& r : probe.devil) chosen.push_back(pool[r.index]);
  const std::vector<map::QoR> truth = evaluator.evaluate_many(chosen, threads);

  std::size_t n_angel = 0, n_devil = 0;
  for (std::size_t i = 0; i < probe.angel.size(); ++i) {
    probe.angel_qor.push_back(truth[i]);
    if (labeler.classify(truth[i]) == 0) ++n_angel;
  }
  for (std::size_t i = 0; i < probe.devil.size(); ++i) {
    const map::QoR& q = truth[probe.angel.size() + i];
    probe.devil_qor.push_back(q);
    if (labeler.classify(q) == devil_class) ++n_devil;
  }
  const std::size_t denom = probe.angel.size() + probe.devil.size();
  probe.accuracy = denom == 0 ? 0.0
                              : static_cast<double>(n_angel + n_devil) /
                                    static_cast<double>(denom);
  return probe;
}

}  // namespace flowgen::core
