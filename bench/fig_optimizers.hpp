#pragma once
// Shared implementation of Figures 4 and 5: evaluation of the five gradient
// descent algorithms (SGD, Momentum, AdaGrad, RMSProp, FTRL) for generating
// area-driven (Fig. 4) or delay-driven (Fig. 5) angel/devil flows on the
// paper's three designs. Produces accuracy-vs-progress curves per
// (design, optimizer) pair; in the paper RMSProp dominates and reaches
// ~95% accuracy.

#include "bench_common.hpp"

namespace flowgen::bench {

inline int run_optimizer_figure(int argc, char** argv,
                                core::Objective objective,
                                const std::string& figure) {
  util::Cli cli(argc, argv);
  const ExperimentScale scale = experiment_scale(cli);
  util::ThreadPool threads(
      static_cast<std::size_t>(cli.get_int("threads", 0)));

  const std::vector<std::string> paper_designs = {"mont", "aes", "alu"};
  util::CsvWriter csv(figure + "_optimizers.csv",
                      {"design", "optimizer", "labeled", "elapsed_s",
                       "accuracy", "loss"});

  for (const std::string& paper_name : paper_designs) {
    const std::string design = design_for(paper_name, cli.full_scale());
    print_banner(figure + " " + objective_name(objective) +
                 "-driven flows, design " + paper_name + " (" + design +
                 ")");

    // The labeled dataset and pool are shared by all five optimizers, and
    // the evaluator cache amortises the synthesis cost across them --
    // exactly the structure of the paper's experiment, where dataset
    // collection dominates and the optimizer only changes training.
    core::SynthesisEvaluator evaluator(designs::make_design(design));
    core::FlowSpace space(4);
    util::Rng rng(7777);
    const auto all =
        space.sample_unique(scale.labeled_flows + scale.pool_flows, rng);
    const std::vector<core::Flow> labeled_flows(
        all.begin(),
        all.begin() + static_cast<std::ptrdiff_t>(scale.labeled_flows));
    const std::vector<core::Flow> pool(
        all.begin() + static_cast<std::ptrdiff_t>(scale.labeled_flows),
        all.end());
    const auto labeled_qor = evaluator.evaluate_many(labeled_flows, &threads);

    core::LabelerConfig lcfg;
    lcfg.objective = objective;
    core::ClassifierConfig ccfg;
    ccfg.conv_filters = scale.conv_filters;
    ccfg.local_filters = 16;
    ccfg.dense_units = 48;
    ccfg.seed = 99;

    std::printf("  %-10s %s\n", "optimizer",
                "accuracy after each retrain round");
    double best_final = -1.0;
    std::string best_name;
    for (const std::string& opt_name : nn::optimizer_names()) {
      util::Rng train_rng(4242);  // same batches for every optimizer
      const auto curve = run_training_curve(
          evaluator, labeled_flows, labeled_qor, pool, lcfg, ccfg, opt_name,
          scale, threads, train_rng);
      std::printf("  %-10s", opt_name.c_str());
      for (const auto& pt : curve) {
        std::printf("  %.2f", pt.accuracy);
        csv.row({paper_name, opt_name, std::to_string(pt.labeled),
                 std::to_string(pt.elapsed_s), std::to_string(pt.accuracy),
                 std::to_string(pt.loss)});
      }
      std::printf("   (final %.2f)\n", curve.back().accuracy);
      if (curve.back().accuracy > best_final) {
        best_final = curve.back().accuracy;
        best_name = opt_name;
      }
    }
    std::printf("  best optimizer on %s: %s (%.2f)"
                "  [paper: RMSProp, ~0.95 at convergence]\n",
                paper_name.c_str(), best_name.c_str(), best_final);
  }
  std::printf("\nseries written to %s_optimizers.csv\n", figure.c_str());
  return 0;
}

}  // namespace flowgen::bench
