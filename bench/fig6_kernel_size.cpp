// Figure 6 reproduction: convolutional kernel-size study (3x6 vs 6x6 vs
// 6x12) for generating delay-driven flows on the AES core. The paper finds
// that n x 2n kernels (3x6, 6x12) clearly beat the square n x n kernel
// (6x6), because each one-hot row contains a single 1 and square kernels
// waste capacity on zero submatrices.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace flowgen;
  util::Cli cli(argc, argv);
  const bench::ExperimentScale scale = bench::experiment_scale(cli);
  util::ThreadPool threads(
      static_cast<std::size_t>(cli.get_int("threads", 0)));

  const std::string design = bench::design_for("aes", cli.full_scale());
  bench::print_banner("Fig.6 kernel-size study, delay-driven, design aes (" +
                      design + ")");

  core::SynthesisEvaluator evaluator(designs::make_design(design));
  core::FlowSpace space(4);
  util::Rng rng(606);
  const auto all =
      space.sample_unique(scale.labeled_flows + scale.pool_flows, rng);
  const std::vector<core::Flow> labeled_flows(
      all.begin(),
      all.begin() + static_cast<std::ptrdiff_t>(scale.labeled_flows));
  const std::vector<core::Flow> pool(
      all.begin() + static_cast<std::ptrdiff_t>(scale.labeled_flows),
      all.end());
  const auto labeled_qor = evaluator.evaluate_many(labeled_flows, &threads);

  core::LabelerConfig lcfg;
  lcfg.objective = core::Objective::kDelay;

  util::CsvWriter csv("fig6_kernels.csv",
                      {"kernel", "labeled", "elapsed_s", "accuracy"});
  struct Kernel {
    std::size_t h, w;
  };
  const std::vector<Kernel> kernels = {{3, 6}, {6, 6}, {6, 12}};
  double best_rect = 0.0, square = 0.0;
  for (const Kernel& k : kernels) {
    core::ClassifierConfig ccfg;
    ccfg.conv_filters = scale.conv_filters;
    ccfg.kernel_h = k.h;
    ccfg.kernel_w = k.w;
    ccfg.local_filters = 16;
    ccfg.dense_units = 48;
    ccfg.seed = 99;
    util::Rng train_rng(4242);
    const auto curve = bench::run_training_curve(
        evaluator, labeled_flows, labeled_qor, pool, lcfg, ccfg, "RMSProp",
        scale, threads, train_rng);
    const std::string name =
        std::to_string(k.h) + "x" + std::to_string(k.w);
    std::printf("  kernel %-6s accuracy:", name.c_str());
    for (const auto& pt : curve) {
      std::printf(" %.2f", pt.accuracy);
      csv.row({name, std::to_string(pt.labeled),
               std::to_string(pt.elapsed_s), std::to_string(pt.accuracy)});
    }
    std::printf("\n");
    if (k.h == k.w) {
      square = curve.back().accuracy;
    } else {
      best_rect = std::max(best_rect, curve.back().accuracy);
    }
  }
  std::printf("\n  n x 2n best = %.2f vs n x n = %.2f"
              "   [paper: rectangular kernels win clearly]\n",
              best_rect, square);
  std::puts("  series written to fig6_kernels.csv");
  return 0;
}
