// Distributed-labeling benchmark: the same 1000-flow m=2 batch the
// evaluator bench labels, pushed through the evaluation service at
// increasing loopback worker counts, against the in-process engine as the
// reference. Emits machine-readable JSON (BENCH_service_<design>.json) so
// the perf trajectory captures distributed scaling alongside single-process
// numbers. Results are cross-checked bit-identical against in-process
// evaluation — a wrong answer fails the bench, not just the speedup.
//
// Note: worker processes only help wall-clock when the host has cores for
// them (each loopback worker is a full synthesis process). On a 1-core
// host the curve is flat and the bench says so in the JSON (host_cores).
//
// --stream-bench switches to the v4 streaming A/B: the same batch through
// the same fleet with per-flow EvalResult streaming on vs the v3
// whole-shard EvalResponse shape, plus a fault-injection run that SIGKILLs
// a worker mid-shard to price a requeue under streaming (only the
// undelivered suffix reruns). Emits BENCH_stream_<design>.json with the
// shard latency distribution per mode; any bit mismatch fails the bench.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluator.hpp"
#include "core/flow_space.hpp"
#include "designs/registry.hpp"
#include "service/loopback.hpp"
#include "service/remote_evaluator.hpp"
#include "util/cli.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace {

using namespace flowgen;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Run {
  std::size_t workers = 0;  ///< 0 = in-process
  double seconds = 0.0;
  double flows_per_sec = 0.0;
  bool identical = true;
  std::size_t shards = 0;
  std::size_t requeues = 0;
};

double percentile(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

struct StreamRun {
  std::string mode;
  double seconds = 0.0;
  double flows_per_sec = 0.0;
  bool identical = true;
  std::size_t shards_done = 0;
  std::size_t flows_streamed = 0;
  std::size_t flows_dispatched = 0;
  std::size_t flows_rescued = 0;
  std::size_t flows_requeued = 0;
  std::size_t workers_lost = 0;
  double shard_ms_mean = 0.0;
  double shard_ms_p50 = 0.0;
  double shard_ms_p90 = 0.0;
  double shard_ms_max = 0.0;
};

// One A/B leg: a fresh loopback fleet, one timed batch, bit-checked
// against the oracle, with the shard latency distribution pulled from the
// coordinator's bounded sample window. `kill_mid_shard` prices a requeue:
// SIGKILL worker 0 after its 10th streamed flow result.
StreamRun stream_leg(const std::string& mode, const std::string& design_name,
                     std::size_t workers, bool stream_results,
                     bool kill_mid_shard,
                     const std::vector<core::Flow>& flows,
                     const std::vector<map::QoR>& oracle) {
  service::WorkerOptions options;
  options.design_id = design_name;
  service::LoopbackCluster cluster(workers, options);
  service::CoordinatorConfig config;
  config.stream_results = stream_results;
  config.shards_per_worker = 8;
  service::EvalCoordinator coordinator(cluster.take_workers(), design_name,
                                       config);
  std::size_t from_worker_zero = 0;
  if (kill_mid_shard) {
    coordinator.set_progress_observer([&](std::size_t w) {
      if (w == 0 && ++from_worker_zero == 10) cluster.kill_worker(0);
    });
  }

  StreamRun r;
  r.mode = mode;
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<map::QoR> qor = coordinator.evaluate_many(flows);
  r.seconds = seconds_since(t0);
  r.flows_per_sec = static_cast<double>(flows.size()) / r.seconds;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (qor[i] != oracle[i]) {
      r.identical = false;
      std::printf("  MISMATCH at flow %zu in %s run\n", i, mode.c_str());
      break;
    }
  }
  const service::CoordinatorStats stats = coordinator.stats();
  r.shards_done = stats.shards_done;
  r.flows_streamed = stats.flows_streamed;
  r.flows_dispatched = stats.flows_dispatched;
  r.flows_rescued = stats.flows_rescued;
  r.flows_requeued = stats.flows_requeued;
  r.workers_lost = stats.workers_lost;
  std::vector<double> ms = stats.shard_ms;
  if (!ms.empty()) {
    double sum = 0.0;
    for (const double v : ms) sum += v;
    r.shard_ms_mean = sum / static_cast<double>(ms.size());
    std::sort(ms.begin(), ms.end());
    r.shard_ms_p50 = percentile(ms, 0.5);
    r.shard_ms_p90 = percentile(ms, 0.9);
    r.shard_ms_max = ms.back();
  }
  std::printf(
      "  %-16s: %.2fs  %.1f flows/s  shard_ms p50/p90/max %.0f/%.0f/%.0f  "
      "rescued=%zu requeued=%zu  (%s)\n",
      mode.c_str(), r.seconds, r.flows_per_sec, r.shard_ms_p50, r.shard_ms_p90,
      r.shard_ms_max, r.flows_rescued, r.flows_requeued,
      r.identical ? "bit-identical" : "MISMATCH");
  return r;
}

// Prices failpoints the way bench_evaluator prices telemetry: median batch
// time through a loopback fleet with no points armed vs an armed-but-idle
// keyed point on the hottest site (worker.eval.flow with a key no flow
// matches — the *worst* idle case: the full registry lookup on every flow,
// not just the relaxed armed-counter load a quiet process pays). Armed
// before each fleet's forks so the workers carry it, exactly like a chaos
// run. --overhead-gate PCT fails the bench when the armed-idle cost
// exceeds PCT; any QoR mismatch fails it regardless.
int run_failpoint_overhead(const util::Cli& cli, double gate) {
  const std::string design_name = cli.get("design", "alu16");
  const unsigned m = static_cast<unsigned>(cli.get_int("m", 2));
  const std::size_t num_flows =
      static_cast<std::size_t>(cli.get_int("flows", 1000));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::size_t workers =
      static_cast<std::size_t>(cli.get_int("overhead-workers", 2));
  const int reps = std::max(1, static_cast<int>(cli.get_int("overhead-reps", 3)));

  const core::FlowSpace space(m);
  util::Rng rng(seed);
  const std::vector<core::Flow> flows = space.sample_unique(num_flows, rng);
  core::SynthesisEvaluator in_process(designs::make_design(design_name));
  const std::vector<map::QoR> oracle = in_process.evaluate_many(flows);

  std::printf(
      "bench_service failpoint overhead: design=%s m=%u flows=%zu "
      "workers=%zu reps=%d\n",
      design_name.c_str(), m, num_flows, workers, reps);

  bool identical = true;
  const auto leg = [&](bool armed) {
    if (armed) {
      // 64 hex chars of no flow's steps: armed, never fires.
      util::failpoint::configure(
          "worker.eval.flow",
          "error(never)@key=" + std::string(64, 'f'));
    }
    auto remote = service::RemoteEvaluator::loopback(design_name, workers);
    util::failpoint::clear_all();
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<map::QoR> qor = remote->evaluate_many(flows);
    const double s = seconds_since(t0);
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (qor[i] != oracle[i]) {
        identical = false;
        std::printf("  MISMATCH at flow %zu (%s)\n", i,
                    armed ? "armed" : "off");
        break;
      }
    }
    return s;
  };

  // One warmup, then alternating off/armed so drift hits both sides.
  (void)leg(false);
  std::vector<double> off_s, on_s;
  for (int i = 0; i < reps; ++i) {
    off_s.push_back(leg(false));
    on_s.push_back(leg(true));
  }
  std::sort(off_s.begin(), off_s.end());
  std::sort(on_s.begin(), on_s.end());
  const double off_med = off_s[off_s.size() / 2];
  const double on_med = on_s[on_s.size() / 2];
  const double overhead =
      off_med > 0 ? (on_med - off_med) / off_med * 100.0 : 0.0;
  std::printf("failpoint overhead: off %.3fs  armed-idle %.3fs  %+.2f%%  "
              "bit_identical=%s\n",
              off_med, on_med, overhead, identical ? "true" : "false");

  const std::string json_path =
      cli.get("json", "BENCH_failpoint_" + design_name + ".json");
  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(f,
                   "{\"design\": \"%s\", \"flows\": %zu, \"workers\": %zu, "
                   "\"reps\": %d,\n \"off_seconds\": %.3f, "
                   "\"armed_idle_seconds\": %.3f,\n \"overhead_percent\": "
                   "%.2f, \"bit_identical\": %s}\n",
                   design_name.c_str(), num_flows, workers, reps, off_med,
                   on_med, overhead, identical ? "true" : "false");
      std::fclose(f);
    }
  }
  if (!identical) return 1;
  if (gate >= 0 && overhead > gate) {
    std::fprintf(stderr,
                 "bench_service: armed-idle failpoint overhead %.2f%% "
                 "exceeds gate %.2f%%\n",
                 overhead, gate);
    return 1;
  }
  return 0;
}

int run_stream_bench(const util::Cli& cli) {
  const std::string design_name = cli.get("design", "alu16");
  const unsigned m = static_cast<unsigned>(cli.get_int("m", 2));
  const std::size_t num_flows =
      static_cast<std::size_t>(cli.get_int("flows", 1000));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::size_t workers =
      static_cast<std::size_t>(cli.get_int("stream-workers", 2));

  const core::FlowSpace space(m);
  util::Rng rng(seed);
  const std::vector<core::Flow> flows = space.sample_unique(num_flows, rng);

  std::printf(
      "bench_service --stream-bench: design=%s m=%u flows=%zu workers=%zu "
      "host_cores=%u\n",
      design_name.c_str(), m, num_flows, workers,
      std::thread::hardware_concurrency());

  core::SynthesisEvaluator in_process(designs::make_design(design_name));
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<map::QoR> oracle = in_process.evaluate_many(flows);
  const double in_process_seconds = seconds_since(t0);
  std::printf("  in-process      : %.2fs  %.1f flows/s\n", in_process_seconds,
              static_cast<double>(num_flows) / in_process_seconds);

  std::vector<StreamRun> runs;
  runs.push_back(stream_leg("whole_shard", design_name, workers,
                            /*stream_results=*/false, /*kill=*/false, flows,
                            oracle));
  runs.push_back(stream_leg("streamed", design_name, workers,
                            /*stream_results=*/true, /*kill=*/false, flows,
                            oracle));
  runs.push_back(stream_leg("streamed_requeue", design_name, workers,
                            /*stream_results=*/true, /*kill=*/true, flows,
                            oracle));

  const double ratio =
      runs[0].seconds > 0 ? runs[1].seconds / runs[0].seconds : 0.0;
  std::string json =
      "{\"design\": \"" + design_name + "\", \"m\": " + std::to_string(m) +
      ", \"flows\": " + std::to_string(num_flows) + ", \"workers\": " +
      std::to_string(workers) + ",\n \"host_cores\": " +
      std::to_string(std::thread::hardware_concurrency()) +
      ",\n \"in_process_seconds\": " + std::to_string(in_process_seconds) +
      ",\n \"stream_vs_whole_shard_ratio\": " + std::to_string(ratio) +
      ",\n \"runs\": [";
  bool all_identical = true;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const StreamRun& r = runs[i];
    all_identical = all_identical && r.identical;
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "%s\n  {\"mode\": \"%s\", \"seconds\": %.3f, \"flows_per_sec\": %.2f, "
        "\"bit_identical\": %s, \"shards_done\": %zu, \"flows_streamed\": %zu, "
        "\"flows_dispatched\": %zu, \"flows_rescued\": %zu, "
        "\"flows_requeued\": %zu, \"workers_lost\": %zu,\n   \"shard_ms\": "
        "{\"mean\": %.1f, \"p50\": %.1f, \"p90\": %.1f, \"max\": %.1f}}",
        i ? "," : "", r.mode.c_str(), r.seconds, r.flows_per_sec,
        r.identical ? "true" : "false", r.shards_done, r.flows_streamed,
        r.flows_dispatched, r.flows_rescued, r.flows_requeued, r.workers_lost,
        r.shard_ms_mean, r.shard_ms_p50, r.shard_ms_p90, r.shard_ms_max);
    json += buf;
  }
  json += "\n]}";
  std::printf("%s\n", json.c_str());

  const std::string json_path =
      cli.get("json", "BENCH_stream_" + design_name + ".json");
  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    }
  }
  return all_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  if (cli.get_bool("stream-bench", false)) return run_stream_bench(cli);
  if (const std::string g = cli.get("overhead-gate", "");
      !g.empty() || cli.get_bool("failpoint-overhead", false)) {
    return run_failpoint_overhead(cli, g.empty() ? -1.0 : std::atof(g.c_str()));
  }
  const std::string design_name = cli.get("design", "alu16");
  const unsigned m = static_cast<unsigned>(cli.get_int("m", 2));
  const std::size_t num_flows =
      static_cast<std::size_t>(cli.get_int("flows", 1000));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::size_t max_workers =
      static_cast<std::size_t>(cli.get_int("max-workers", 8));
  // --ship-netlist assembles each fleet via protocol v2 LoadDesign (the
  // off-registry path) instead of a registry id in Hello — same QoR bits,
  // so the oracle check below also pins the serialization round-trip.
  const bool ship_netlist = cli.get_bool("ship-netlist", false);

  const core::FlowSpace space(m);
  util::Rng rng(seed);
  const std::vector<core::Flow> flows = space.sample_unique(num_flows, rng);

  std::printf("bench_service: design=%s m=%u flows=%zu host_cores=%u\n",
              design_name.c_str(), m, num_flows,
              std::thread::hardware_concurrency());

  // In-process reference (single thread) — also the bit-identity oracle.
  core::SynthesisEvaluator in_process(designs::make_design(design_name));
  Run reference;
  {
    const auto t0 = std::chrono::steady_clock::now();
    const auto qor = in_process.evaluate_many(flows);
    reference.seconds = seconds_since(t0);
    reference.flows_per_sec =
        static_cast<double>(num_flows) / reference.seconds;
    std::printf("  in-process      : %.2fs  %.1f flows/s\n",
                reference.seconds, reference.flows_per_sec);
  }
  const std::vector<map::QoR> oracle = in_process.evaluate_many(flows);

  std::vector<Run> runs;
  for (std::size_t workers = 1; workers <= max_workers; workers *= 2) {
    auto remote =
        ship_netlist
            ? service::RemoteEvaluator::loopback_netlist(in_process.design(),
                                                         workers)
            : service::RemoteEvaluator::loopback(design_name, workers);
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<map::QoR> qor = remote->evaluate_many(flows);
    Run r;
    r.workers = workers;
    r.seconds = seconds_since(t0);
    r.flows_per_sec = static_cast<double>(num_flows) / r.seconds;
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (qor[i] != oracle[i]) {
        r.identical = false;
        std::printf("  MISMATCH at flow %zu with %zu workers\n", i, workers);
        break;
      }
    }
    const auto stats = remote->stats();
    r.shards = stats.shards;
    r.requeues = stats.requeues;
    std::printf("  %zu worker(s)%s    : %.2fs  %.1f flows/s  (%s)\n", workers,
                workers >= 10 ? "" : " ", r.seconds, r.flows_per_sec,
                r.identical ? "bit-identical" : "MISMATCH");
    runs.push_back(r);
  }

  std::string json = "{\"design\": \"" + design_name + "\", \"m\": " +
                     std::to_string(m) + ", \"flows\": " +
                     std::to_string(num_flows) + ",\n \"host_cores\": " +
                     std::to_string(std::thread::hardware_concurrency()) +
                     ",\n \"in_process_seconds\": " +
                     std::to_string(reference.seconds) + ",\n \"runs\": [";
  bool all_identical = true;
  const double single_worker_seconds = runs.empty() ? 0.0 : runs[0].seconds;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    all_identical = all_identical && r.identical;
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%s\n  {\"workers\": %zu, \"seconds\": %.3f, "
                  "\"flows_per_sec\": %.2f, \"speedup_vs_one_worker\": %.2f, "
                  "\"bit_identical\": %s, \"shards\": %zu, \"requeues\": %zu}",
                  i ? "," : "", r.workers, r.seconds, r.flows_per_sec,
                  r.seconds > 0 ? single_worker_seconds / r.seconds : 0.0,
                  r.identical ? "true" : "false", r.shards, r.requeues);
    json += buf;
  }
  json += "\n]}";
  std::printf("%s\n", json.c_str());

  const std::string json_path =
      cli.get("json", "BENCH_service_" + design_name + ".json");
  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    }
  }
  return all_identical ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "bench_service: %s\n", e.what());
  return 1;
}
