// bench_store — prices the QoR store at catalogue scale: append throughput,
// linear log recovery vs compacted-segment attach, compaction itself, and
// point-lookup latency through the cuckoo index. The headline number is
// attach_speedup (log recovery seconds / segment attach seconds): the reason
// compaction exists is that a coordinator restarting over a 10^6-label
// catalogue must not spend its startup re-CRC-ing a million log frames.
//
//   bench_store --records 1000000 --json BENCH_store_alu16.json
//   bench_store --records 20000            # CI smoke scale
//
// No synthesis runs here: records are deterministic synthetic labels (the
// store neither knows nor cares), so the bench isolates storage cost.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/qor_store.hpp"
#include "util/cli.hpp"

namespace {

using namespace flowgen;
namespace fs = std::filesystem;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

core::QorStoreConfig config_for(const std::string& dir,
                                const std::string& writer) {
  core::QorStoreConfig config;
  config.dir = dir;
  config.writer_name = writer;
  return config;
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  const auto records = static_cast<std::size_t>(
      cli.get_int("records", cli.full_scale() ? 1000000 : 1000000));
  const auto num_designs =
      static_cast<std::size_t>(cli.get_int("designs", 64));
  const auto lookups =
      static_cast<std::size_t>(cli.get_int("lookups", 200000));
  const std::string dir =
      cli.get("dir", (fs::temp_directory_path() / "flowgen_bench_store")
                         .string());
  fs::remove_all(dir);

  // Deterministic synthetic labels: design fingerprints fan out over
  // --designs, step sequences walk the paper alphabet at lengths 4..12 —
  // the shape of a real labeling campaign without paying for synthesis.
  const auto design_of = [num_designs](std::size_t i) {
    const std::uint64_t d = i % num_designs;
    return aig::Fingerprint{0x416C753136ull + d, 0x9e3779b97f4a7c15ull * (d + 1)};
  };
  const auto steps_of = [num_designs](std::size_t i) {
    // Base-6 digits of i/num_designs (the per-design sequence number), 9
    // digits — unique per (design, i) by construction, lengths 9..12 via
    // a scrambled suffix so record sizes vary like real flows.
    core::StepsKey steps;
    std::uint64_t v = i / num_designs;
    for (std::size_t k = 0; k < 9; ++k) {
      steps.push_back(static_cast<opt::StepId>(v % 6));
      v /= 6;
    }
    const std::uint64_t x = 0x2545F4914F6CDD1Dull * (i + 1);
    for (std::size_t k = 0; k < x % 4; ++k) {
      steps.push_back(static_cast<opt::StepId>((x >> (8 * k)) % 6));
    }
    return steps;
  };
  const auto qor_of = [](std::size_t i) {
    return map::QoR{100.0 + 0.25 * static_cast<double>(i % 4096),
                    500.0 + static_cast<double>(i % 997),
                    200 + i % 1000, i % 40};
  };

  // ---- append ----
  std::printf("bench_store: appending %zu records over %zu designs...\n",
              records, num_designs);
  std::size_t appended = 0;
  double append_seconds = 0.0;
  {
    core::QorStore store(config_for(dir, "bench"));
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < records; ++i) {
      const core::StepsKey steps = steps_of(i);
      if (store.append(design_of(i), core::StepsView(steps), qor_of(i))) {
        ++appended;
      }
    }
    store.flush();
    append_seconds = seconds_since(t0);
  }

  // ---- attach from raw logs (linear recovery) ----
  double log_attach_seconds = 0.0;
  std::size_t loaded_from_log = 0;
  {
    const auto t0 = std::chrono::steady_clock::now();
    core::QorStore store(config_for(dir, "reader"));
    log_attach_seconds = seconds_since(t0);
    loaded_from_log = store.size();
  }

  // ---- compact ----
  double compact_seconds = 0.0;
  std::size_t compacted_records = 0;
  {
    core::QorStore store(config_for(dir, "compactor"));
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = store.compact();
    compact_seconds = seconds_since(t0);
    compacted_records = result.records;
  }

  // ---- attach from the compacted segment ----
  double seg_attach_seconds = 0.0;
  std::size_t loaded_from_seg = 0;
  std::size_t segments_loaded = 0;
  double lookup_ns = 0.0;
  std::size_t hits = 0;
  {
    const auto t0 = std::chrono::steady_clock::now();
    core::QorStore store(config_for(dir, "reader2"));
    seg_attach_seconds = seconds_since(t0);
    loaded_from_seg = store.size();
    segments_loaded = store.stats().segments_loaded;

    const auto l0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < lookups; ++i) {
      const std::size_t pick = (i * 2654435761u) % records;
      const core::StepsKey steps = steps_of(pick);
      if (store.lookup(design_of(pick), core::StepsView(steps))) ++hits;
    }
    lookup_ns = lookups ? seconds_since(l0) * 1e9 /
                              static_cast<double>(lookups)
                        : 0.0;
  }

  const bool sizes_agree =
      loaded_from_log == appended && loaded_from_seg == appended &&
      compacted_records == appended && hits == lookups;
  const double speedup =
      seg_attach_seconds > 0 ? log_attach_seconds / seg_attach_seconds : 0.0;

  char json[1024];
  std::snprintf(
      json, sizeof json,
      "{\"design\": \"alu16\", \"records\": %zu, \"designs\": %zu,\n"
      " \"append_seconds\": %.3f, \"appends_per_sec\": %.0f,\n"
      " \"log_attach_seconds\": %.3f, \"compact_seconds\": %.3f,"
      " \"segment_attach_seconds\": %.3f,\n"
      " \"attach_speedup\": %.2f, \"segments_loaded\": %zu,\n"
      " \"lookup_ns\": %.0f, \"lookups\": %zu,\n"
      " \"sizes_agree\": %s}",
      appended, num_designs, append_seconds,
      append_seconds > 0 ? static_cast<double>(appended) / append_seconds
                         : 0.0,
      log_attach_seconds, compact_seconds, seg_attach_seconds, speedup,
      segments_loaded, lookup_ns, lookups,
      sizes_agree ? "true" : "false");
  std::printf("%s\n", json);

  if (const std::string path = cli.get("json", ""); !path.empty()) {
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fprintf(f, "%s\n", json);
      std::fclose(f);
    }
  }

  // The gate CI runs: the compacted attach must beat linear recovery by
  // the configured factor (default off; BENCH runs pass --gate 10).
  if (const double gate = cli.get_double("gate", 0.0); gate > 0.0) {
    if (!sizes_agree || speedup < gate) {
      std::fprintf(stderr,
                   "bench_store: FAIL speedup %.2f < gate %.2f (or size "
                   "mismatch)\n",
                   speedup, gate);
      return 1;
    }
  }
  fs::remove_all(dir);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "bench_store: %s\n", e.what());
  return 1;
}
