// google-benchmark microbenchmarks for the synthesis substrate: per-pass
// transform cost, cut enumeration, technology mapping and full-flow
// evaluation. These are the per-iteration costs behind the "collecting the
// training dataset takes most of the runtime" observation in the paper.

#include <benchmark/benchmark.h>

#include "aig/cuts.hpp"
#include "core/evaluator.hpp"
#include "core/flow_space.hpp"
#include "designs/registry.hpp"
#include "map/mapper.hpp"
#include "opt/transform.hpp"

namespace {

using namespace flowgen;

const aig::Aig& cached_design(const std::string& name) {
  static std::map<std::string, aig::Aig> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, designs::make_design(name)).first;
  }
  return it->second;
}

void BM_DesignElaboration(benchmark::State& state,
                          const std::string& name) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(designs::make_design(name));
  }
}
BENCHMARK_CAPTURE(BM_DesignElaboration, alu16, std::string("alu16"));
BENCHMARK_CAPTURE(BM_DesignElaboration, mont8, std::string("mont:8"));

void BM_Transform(benchmark::State& state, const std::string& design,
                  const std::string& transform) {
  const aig::Aig& g = cached_design(design);
  const opt::TransformKind kind = opt::transform_from_name(transform);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::apply_transform(g, kind));
  }
  state.counters["and_nodes"] = static_cast<double>(g.num_ands());
}
BENCHMARK_CAPTURE(BM_Transform, alu16_balance, std::string("alu16"),
                  std::string("balance"));
BENCHMARK_CAPTURE(BM_Transform, alu16_rewrite, std::string("alu16"),
                  std::string("rewrite"));
BENCHMARK_CAPTURE(BM_Transform, alu16_refactor, std::string("alu16"),
                  std::string("refactor"));
BENCHMARK_CAPTURE(BM_Transform, alu16_restructure, std::string("alu16"),
                  std::string("restructure"));
BENCHMARK_CAPTURE(BM_Transform, mont8_rewrite, std::string("mont:8"),
                  std::string("rewrite"));

void BM_CutEnumeration(benchmark::State& state) {
  const aig::Aig& g = cached_design("alu16");
  aig::CutParams params;
  params.cut_size = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    aig::CutManager cuts(g, params);
    benchmark::DoNotOptimize(cuts.cuts(g.num_nodes() - 1).size());
  }
}
BENCHMARK(BM_CutEnumeration)->Arg(4)->Arg(5)->Arg(6);

void BM_TechnologyMapping(benchmark::State& state,
                          const std::string& design) {
  const aig::Aig& g = cached_design(design);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map::evaluate_qor(g));
  }
}
BENCHMARK_CAPTURE(BM_TechnologyMapping, alu16, std::string("alu16"));
BENCHMARK_CAPTURE(BM_TechnologyMapping, mont8, std::string("mont:8"));

void BM_FullFlowEvaluation(benchmark::State& state) {
  // One length-24 flow end to end: the unit of work the pipeline pays per
  // labeled training flow.
  core::SynthesisEvaluator evaluator(cached_design("alu16"));
  core::FlowSpace space(4);
  util::Rng rng(1);
  for (auto _ : state) {
    const core::Flow flow = space.random_flow(rng);
    benchmark::DoNotOptimize(evaluator.evaluate(flow));
  }
}
BENCHMARK(BM_FullFlowEvaluation)->Unit(benchmark::kMillisecond);

}  // namespace
