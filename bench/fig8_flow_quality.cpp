// Figure 8 reproduction: quality of the generated flows. For each of the
// three designs, the full autonomous pipeline (Figure 2) runs twice — once
// area-driven, once delay-driven — and the selected angel/devil flows are
// plotted against the sample-pool QoR cloud. The paper's claim: area-angel
// flows are bounded at the low-area edge of the cloud, delay-angel flows at
// the low-delay edge, and devil flows sit at the opposite extremes.

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "util/ascii_plot.hpp"

namespace {

using namespace flowgen;

struct ObjectiveResult {
  core::PipelineResult res;
};

void run_design(const std::string& paper_name, const std::string& design,
                const bench::ExperimentScale& scale, std::size_t threads,
                util::CsvWriter& csv) {
  bench::print_banner("Fig.8 flows generated for design " + paper_name +
                      " (" + design + ")");

  std::vector<util::Series> series;

  // Shared cloud: evaluate a slice of random flows for the background.
  core::SynthesisEvaluator cloud_eval(designs::make_design(design));
  core::FlowSpace space(4);
  util::Rng cloud_rng(808);
  const auto cloud_flows =
      space.sample_unique(std::min<std::size_t>(scale.pool_flows, 300),
                          cloud_rng);
  util::ThreadPool pool_threads(threads);
  const auto cloud_qor = cloud_eval.evaluate_many(cloud_flows, &pool_threads);
  util::Series cloud;
  cloud.name = "sample flows";
  cloud.glyph = '.';
  for (const auto& q : cloud_qor) {
    cloud.xs.push_back(q.area_um2);
    cloud.ys.push_back(q.delay_ps);
  }
  series.push_back(cloud);

  struct Run {
    core::Objective objective;
    char angel_glyph, devil_glyph;
  };
  for (const Run& run : {Run{core::Objective::kArea, 'A', 'a'},
                         Run{core::Objective::kDelay, 'D', 'd'}}) {
    core::PipelineConfig cfg;
    cfg.training_flows = scale.labeled_flows;
    cfg.sample_flows = scale.pool_flows;
    cfg.initial_labeled = scale.initial_labeled;
    cfg.retrain_every = scale.retrain_every;
    cfg.num_angel = cfg.num_devil = scale.per_side;
    cfg.steps_per_round = scale.steps_per_round;
    cfg.batch_size = scale.batch_size;
    cfg.learning_rate = scale.learning_rate;
    cfg.classifier.conv_filters = scale.conv_filters;
    cfg.classifier.local_filters = 16;
    cfg.classifier.dense_units = 48;
    cfg.labeler.objective = run.objective;
    cfg.seed = 4242;
    cfg.threads = threads;

    core::FlowGenPipeline pipeline(designs::make_design(design), cfg);
    const core::PipelineResult res = pipeline.run();

    const char* obj = core::objective_name(run.objective);
    std::vector<double> angel_metric, devil_metric, cloud_metric;
    for (const auto& q : res.angel_qor) {
      angel_metric.push_back(core::metric_value(run.objective, q));
    }
    for (const auto& q : res.devil_qor) {
      devil_metric.push_back(core::metric_value(run.objective, q));
    }
    for (const auto& q : cloud_qor) {
      cloud_metric.push_back(core::metric_value(run.objective, q));
    }
    std::printf(
        "  %s-driven: accuracy=%.2f  angel %s: best=%.1f mean=%.1f |"
        " devil %s: worst=%.1f mean=%.1f | cloud mean=%.1f\n",
        obj, res.paper_accuracy, obj, util::min_of(angel_metric),
        util::mean(angel_metric), obj, util::max_of(devil_metric),
        util::mean(devil_metric), util::mean(cloud_metric));
    std::printf("  best %s angel-flow: %s\n", obj,
                res.angel_flows.front().to_string().c_str());

    util::Series angel;
    angel.name = std::string(obj) + ":angel-flows";
    angel.glyph = run.angel_glyph;
    for (const auto& q : res.angel_qor) {
      angel.xs.push_back(q.area_um2);
      angel.ys.push_back(q.delay_ps);
    }
    util::Series devil;
    devil.name = std::string(obj) + ":devil-flows";
    devil.glyph = run.devil_glyph;
    for (const auto& q : res.devil_qor) {
      devil.xs.push_back(q.area_um2);
      devil.ys.push_back(q.delay_ps);
    }
    series.push_back(angel);
    series.push_back(devil);

    for (std::size_t i = 0; i < res.angel_qor.size(); ++i) {
      csv.row({paper_name, obj, "angel", std::to_string(
                   res.angel_qor[i].area_um2),
               std::to_string(res.angel_qor[i].delay_ps)});
    }
    for (std::size_t i = 0; i < res.devil_qor.size(); ++i) {
      csv.row({paper_name, obj, "devil", std::to_string(
                   res.devil_qor[i].area_um2),
               std::to_string(res.devil_qor[i].delay_ps)});
    }
  }

  util::PlotOptions opt;
  opt.title = "  area/delay plane (cf. Fig. 8): '.' cloud, A/a area-angel/"
              "devil, D/d delay-angel/devil";
  opt.x_label = "area um^2";
  opt.y_label = "delay ps";
  std::fputs(util::scatter_plot(series, opt).c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bench::ExperimentScale scale = bench::experiment_scale(cli);
  const auto threads =
      static_cast<std::size_t>(cli.get_int("threads", 0));

  util::CsvWriter csv("fig8_flows.csv",
                      {"design", "objective", "kind", "area_um2",
                       "delay_ps"});
  for (const std::string paper_name : {"mont", "aes", "alu"}) {
    run_design(paper_name, bench::design_for(paper_name, cli.full_scale()),
               scale, threads, csv);
  }
  std::puts("\nseries written to fig8_flows.csv");
  return 0;
}
