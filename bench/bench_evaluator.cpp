// Throughput benchmark for the prefix-sharing flow-evaluation engine.
// Labels the same batch of m-repetition flows twice — once per-flow from
// scratch (prefix cache and mapping dedup off), once through the full
// engine — at equal thread count, and reports flows/sec, cache hit rate and
// speedup as machine-readable JSON (stdout + optional --json file). The
// paper's dataset-collection step is exactly this workload.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/flow_space.hpp"
#include "designs/registry.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace flowgen;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct RunResult {
  double seconds = 0.0;
  double flows_per_sec = 0.0;
  core::EvaluatorStats stats;
  std::vector<map::QoR> qor;
};

RunResult run(const aig::Aig& design, const std::vector<core::Flow>& flows,
              const core::EvaluatorConfig& config, std::size_t threads) {
  core::SynthesisEvaluator evaluator(design, map::CellLibrary::builtin(), {},
                                     config);
  util::ThreadPool pool(threads);
  const auto t0 = std::chrono::steady_clock::now();
  RunResult r;
  r.qor = evaluator.evaluate_many(flows, threads > 1 ? &pool : nullptr);
  r.seconds = seconds_since(t0);
  r.flows_per_sec =
      r.seconds > 0 ? static_cast<double>(flows.size()) / r.seconds : 0.0;
  r.stats = evaluator.stats();
  return r;
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  const std::string design_name = cli.get("design", "alu16");
  const unsigned m = static_cast<unsigned>(cli.get_int("m", 2));
  const std::size_t num_flows =
      static_cast<std::size_t>(cli.get_int("flows", 1000));
  const std::size_t threads =
      static_cast<std::size_t>(cli.get_int("threads", 1));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::size_t budget_mb =
      static_cast<std::size_t>(cli.get_int("budget-mb", 256));
  const bool skip_naive = cli.get_bool("skip-naive", false);

  const aig::Aig design = designs::make_design(design_name);
  const core::FlowSpace space(m);
  util::Rng rng(seed);
  const std::vector<core::Flow> flows = space.sample_unique(num_flows, rng);

  std::printf("bench_evaluator: design=%s (|AND|=%zu) m=%u L=%u flows=%zu "
              "threads=%zu\n",
              design_name.c_str(), design.num_ands(), m, space.length(),
              num_flows, threads);

  core::EvaluatorConfig naive_cfg;
  naive_cfg.use_prefix_cache = false;
  naive_cfg.dedup_mappings = false;

  core::EvaluatorConfig engine_cfg;
  engine_cfg.prefix_cache.byte_budget = budget_mb << 20;

  RunResult naive;
  if (!skip_naive) {
    naive = run(design, flows, naive_cfg, threads);
    std::printf("  naive : %.2fs  %.1f flows/s\n", naive.seconds,
                naive.flows_per_sec);
  }
  const RunResult engine = run(design, flows, engine_cfg, threads);
  std::printf("  engine: %.2fs  %.1f flows/s\n", engine.seconds,
              engine.flows_per_sec);

  bool identical = true;
  if (!skip_naive) {
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (naive.qor[i].area_um2 != engine.qor[i].area_um2 ||
          naive.qor[i].delay_ps != engine.qor[i].delay_ps ||
          naive.qor[i].num_cells != engine.qor[i].num_cells ||
          naive.qor[i].num_inverters != engine.qor[i].num_inverters) {
        identical = false;
        std::printf("  MISMATCH at flow %zu\n", i);
        break;
      }
    }
  }

  const double speedup =
      skip_naive || engine.seconds <= 0 ? 0.0 : naive.seconds / engine.seconds;
  const auto& st = engine.stats;
  char json[2048];
  std::snprintf(
      json, sizeof json,
      "{\"design\": \"%s\", \"m\": %u, \"flows\": %zu, \"threads\": %zu,\n"
      " \"naive_seconds\": %.3f, \"engine_seconds\": %.3f,\n"
      " \"naive_flows_per_sec\": %.2f, \"engine_flows_per_sec\": %.2f,\n"
      " \"speedup\": %.2f, \"bit_identical\": %s,\n"
      " \"prefix_hit_rate\": %.4f, \"prefix_entries\": %zu,"
      " \"prefix_bytes\": %zu, \"prefix_evictions\": %zu,\n"
      " \"transforms_applied\": %zu, \"transforms_skipped\": %zu,\n"
      " \"mappings\": %zu, \"mappings_deduped\": %zu}",
      design_name.c_str(), m, num_flows, threads, naive.seconds,
      engine.seconds, naive.flows_per_sec, engine.flows_per_sec, speedup,
      skip_naive ? "null" : (identical ? "true" : "false"),
      st.prefix.hit_rate(), st.prefix.entries, st.prefix.bytes,
      st.prefix.evictions, st.transforms_applied, st.transforms_skipped,
      st.mappings, st.mappings_deduped);
  std::printf("%s\n", json);

  const std::string json_path = cli.get("json", "");
  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", json);
      std::fclose(f);
    }
  }
  return (!skip_naive && !identical) ? 1 : 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "bench_evaluator: %s\n", e.what());
  return 1;
}
