// Throughput benchmark for the prefix-sharing flow-evaluation engine.
// Labels the same batch of m-repetition flows three ways — per-flow from
// scratch (prefix cache, mapping dedup and analysis sharing off), engine
// without analysis sharing, and the full engine — at equal thread count,
// and reports flows/sec, cache hit rate and speedup as machine-readable
// JSON (stdout + optional --json file). The paper's dataset-collection
// step is exactly this workload.
//
// --transforms-json additionally emits per-transform per-pass timings
// (cold analysis vs warm analysis on the same graph) so the perf
// trajectory of every pass is tracked PR over PR.
//
// --telemetry-json prices the telemetry layer itself: the same labeling
// batch with metrics off (set_enabled(false) — the A/B the registry was
// designed for) vs on, plus the per-spec cold/warm pass timings read back
// out of the flowgen_transform_ms histograms rather than separate timers.
// --overhead-gate PCT makes the bench exit non-zero when the measured
// overhead exceeds PCT percent — CI's telemetry budget. --trace FILE
// additionally captures Chrome trace events for the whole run.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "aig/analysis.hpp"
#include "core/evaluator.hpp"
#include "core/flow_space.hpp"
#include "designs/registry.hpp"
#include "opt/registry.hpp"
#include "opt/transform.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace flowgen;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct RunResult {
  double seconds = 0.0;
  double flows_per_sec = 0.0;
  core::EvaluatorStats stats;
  std::vector<map::QoR> qor;
};

/// The extended-registry scenario: the paper alphabet + 2 parameterized
/// variants (8 specs), sampled at the same m, pushed through the full
/// engine. Emits flow-space sizes (how much larger the scenario space is)
/// and engine throughput as one JSON object (--registry-json).
std::string bench_registry(const aig::Aig& design,
                           const std::string& design_name, unsigned m,
                           std::size_t num_flows, std::size_t threads,
                           std::uint64_t seed, std::size_t budget_mb);

RunResult run(const aig::Aig& design, const std::vector<core::Flow>& flows,
              const core::EvaluatorConfig& config, std::size_t threads) {
  core::SynthesisEvaluator evaluator(design, map::CellLibrary::builtin(), {},
                                     config);
  util::ThreadPool pool(threads);
  const auto t0 = std::chrono::steady_clock::now();
  RunResult r;
  r.qor = evaluator.evaluate_many(flows, threads > 1 ? &pool : nullptr);
  r.seconds = seconds_since(t0);
  r.flows_per_sec =
      r.seconds > 0 ? static_cast<double>(flows.size()) / r.seconds : 0.0;
  r.stats = evaluator.stats();
  return r;
}

/// Median wall-clock of `reps` invocations of `fn` in milliseconds.
template <typename Fn>
double median_ms(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    samples.push_back(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Per-transform pass timings on `design`: cold = analysis-cold (a fresh
/// pass-local AnalysisCache per run; the process-wide factored-form memo
/// does warm across reps and kinds, deterministically — same order every
/// run — so columns stay comparable PR over PR, but cold_ms is not
/// memo-from-scratch cost) vs warm (a shared AnalysisCache filled by the
/// first run — the state a pass resuming from a cached snapshot sees).
/// Emits one JSON object.
std::string bench_transforms(const aig::Aig& design,
                             const std::string& design_name, int reps) {
  std::string json = "{\"design\": \"" + design_name + "\", \"ands\": " +
                     std::to_string(design.num_ands()) +
                     ", \"transforms\": [\n";
  bool first = true;
  for (opt::TransformKind kind : opt::paper_transform_set()) {
    const double cold_ms = median_ms(reps, [&] {
      (void)opt::apply_transform(design, kind);  // pass-local analysis
    });
    aig::AnalysisCache warm_cache(design);
    (void)opt::apply_transform_analyzed(design, kind, &warm_cache, false);
    const double warm_ms = median_ms(reps, [&] {
      (void)opt::apply_transform_analyzed(design, kind, &warm_cache, false);
    });
    const double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0.0;
    char line[256];
    std::snprintf(line, sizeof line,
                  "  {\"transform\": \"%s\", \"cold_ms\": %.3f, "
                  "\"warm_ms\": %.3f, \"warm_speedup\": %.2f}",
                  opt::transform_name(kind).c_str(), cold_ms, warm_ms,
                  speedup);
    if (!first) json += ",\n";
    json += line;
    first = false;
    std::printf("  %-14s cold %8.3f ms  warm %8.3f ms  (%.1fx)\n",
                opt::transform_name(kind).c_str(), cold_ms, warm_ms, speedup);
  }
  json += "\n]}";
  return json;
}

std::string bench_registry(const aig::Aig& design,
                           const std::string& design_name, unsigned m,
                           std::size_t num_flows, std::size_t threads,
                           std::uint64_t seed, std::size_t budget_mb) {
  std::vector<opt::TransformSpec> specs =
      opt::TransformRegistry::paper()->specs();
  specs.push_back(opt::spec_from_text("rewrite -K 3"));
  specs.push_back(opt::spec_from_text("restructure -D 12"));
  const auto registry =
      std::make_shared<const opt::TransformRegistry>(std::move(specs));

  const core::FlowSpace paper_space(m);
  const core::FlowSpace space(m, registry);
  util::Rng rng(seed);
  const std::vector<core::Flow> flows = space.sample_unique(num_flows, rng);

  core::EvaluatorConfig config;
  config.registry = registry;
  config.prefix_cache.byte_budget = budget_mb << 20;
  const RunResult engine = run(design, flows, config, threads);

  std::printf("extended registry (%zu specs, m=%u, L=%u):\n",
              registry->size(), m, space.length());
  std::printf("  space %s flows (paper: %s)  engine %.2fs  %.1f flows/s  "
              "hit rate %.3f\n",
              core::u128_to_string(space.size()).c_str(),
              core::u128_to_string(paper_space.size()).c_str(),
              engine.seconds, engine.flows_per_sec,
              engine.stats.prefix.hit_rate());

  char json[1024];
  std::snprintf(
      json, sizeof json,
      "{\"design\": \"%s\", \"m\": %u, \"flows\": %zu, \"threads\": %zu,\n"
      " \"registry_specs\": %zu, \"registry_fingerprint\": \"%s\",\n"
      " \"flow_length\": %u, \"space_size\": \"%s\","
      " \"paper_space_size\": \"%s\",\n"
      " \"engine_seconds\": %.3f, \"engine_flows_per_sec\": %.2f,\n"
      " \"prefix_hit_rate\": %.4f, \"transforms_applied\": %zu,"
      " \"transforms_skipped\": %zu}",
      design_name.c_str(), m, num_flows, threads, registry->size(),
      opt::registry_fingerprint_hex(registry->fingerprint()).c_str(),
      space.length(), core::u128_to_string(space.size()).c_str(),
      core::u128_to_string(paper_space.size()).c_str(), engine.seconds,
      engine.flows_per_sec, engine.stats.prefix.hit_rate(),
      engine.stats.transforms_applied, engine.stats.transforms_skipped);
  return json;
}

/// Prices telemetry: median batch time with metrics disabled vs enabled
/// (same evaluator config, fresh evaluator each run so cache state is
/// symmetric), QoR equality across the two, and the per-spec cold/warm
/// pass timings sourced from the flowgen_transform_ms histograms the
/// evaluator itself filled — no second set of timers.
std::string bench_telemetry(const aig::Aig& design,
                            const std::string& design_name,
                            const std::vector<core::Flow>& flows,
                            const core::EvaluatorConfig& config,
                            std::size_t threads, int reps,
                            double* overhead_out) {
  const auto registry =
      config.registry ? config.registry : opt::TransformRegistry::paper();
  // One warmup (memo/allocator state), then alternating off/on reps so
  // drift hits both sides equally.
  telemetry::set_enabled(false);
  (void)run(design, flows, config, threads);
  std::vector<double> off_s, on_s;
  std::vector<map::QoR> off_qor, on_qor;
  telemetry::reset_all();
  for (int i = 0; i < reps; ++i) {
    telemetry::set_enabled(false);
    RunResult off = run(design, flows, config, threads);
    off_s.push_back(off.seconds);
    if (off_qor.empty()) off_qor = std::move(off.qor);
    telemetry::set_enabled(true);
    RunResult on = run(design, flows, config, threads);
    on_s.push_back(on.seconds);
    if (on_qor.empty()) on_qor = std::move(on.qor);
  }
  telemetry::set_enabled(true);
  std::sort(off_s.begin(), off_s.end());
  std::sort(on_s.begin(), on_s.end());
  const double off_med = off_s[off_s.size() / 2];
  const double on_med = on_s[on_s.size() / 2];
  const double overhead =
      off_med > 0 ? (on_med - off_med) / off_med * 100.0 : 0.0;
  if (overhead_out) *overhead_out = overhead;

  bool identical = off_qor.size() == on_qor.size();
  for (std::size_t i = 0; identical && i < off_qor.size(); ++i) {
    identical = off_qor[i].area_um2 == on_qor[i].area_um2 &&
                off_qor[i].delay_ps == on_qor[i].delay_ps &&
                off_qor[i].num_cells == on_qor[i].num_cells &&
                off_qor[i].num_inverters == on_qor[i].num_inverters;
  }

  std::printf("telemetry overhead: off %.3fs  on %.3fs  %+.2f%%  "
              "bit_identical=%s\n",
              off_med, on_med, overhead, identical ? "true" : "false");

  char head[512];
  std::snprintf(
      head, sizeof head,
      "{\"design\": \"%s\", \"flows\": %zu, \"threads\": %zu, \"reps\": %d,\n"
      " \"telemetry_off_seconds\": %.3f, \"telemetry_on_seconds\": %.3f,\n"
      " \"overhead_percent\": %.2f, \"bit_identical\": %s,\n"
      " \"specs\": [\n",
      design_name.c_str(), flows.size(), threads, reps, off_med, on_med,
      overhead, identical ? "true" : "false");
  std::string json = head;
  // Same (name, labels, bounds) as the evaluator's registration — the
  // registry hands back the very histograms the on-runs filled.
  const std::vector<double> fine_ms = telemetry::exp_buckets(0.005, 2.0, 18);
  for (std::size_t i = 0; i < registry->size(); ++i) {
    const std::string& spec = registry->name(static_cast<opt::StepId>(i));
    const auto snap_of = [&](const char* analysis) {
      return telemetry::histogram("flowgen_transform_ms",
                                  "Per-transform pass wall time (ms)",
                                  fine_ms,
                                  {{"spec", spec}, {"analysis", analysis}})
          .snapshot();
    };
    const telemetry::Histogram::Snapshot cold = snap_of("cold");
    const telemetry::Histogram::Snapshot warm = snap_of("warm");
    char line[320];
    std::snprintf(line, sizeof line,
                  "  {\"spec\": \"%s\", \"cold_count\": %" PRIu64
                  ", \"cold_mean_ms\": %.4f, \"warm_count\": %" PRIu64
                  ", \"warm_mean_ms\": %.4f}%s\n",
                  spec.c_str(), cold.count, cold.mean(), warm.count,
                  warm.mean(),
                  i + 1 < registry->size() ? "," : "");
    json += line;
  }
  json += "]}";
  return json;
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  const std::string design_name = cli.get("design", "alu16");
  const unsigned m = static_cast<unsigned>(cli.get_int("m", 2));
  const std::size_t num_flows =
      static_cast<std::size_t>(cli.get_int("flows", 1000));
  const std::size_t threads =
      static_cast<std::size_t>(cli.get_int("threads", 1));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::size_t budget_mb =
      static_cast<std::size_t>(cli.get_int("budget-mb", 256));
  const bool skip_naive = cli.get_bool("skip-naive", false);
  const std::string transforms_json = cli.get("transforms-json", "");
  const std::string registry_json = cli.get("registry-json", "");
  const int transform_reps = cli.get_int("transform-reps", 5);
  const std::string telemetry_json = cli.get("telemetry-json", "");
  const int overhead_reps =
      std::max(1, static_cast<int>(cli.get_int("overhead-reps", 3)));
  const double overhead_gate = [&] {
    const std::string g = cli.get("overhead-gate", "");
    return g.empty() ? -1.0 : std::atof(g.c_str());
  }();
  if (const std::string trace = cli.get("trace", ""); !trace.empty()) {
    telemetry::start_tracing(trace);
  }

  const aig::Aig design = designs::make_design(design_name);
  const core::FlowSpace space(m);
  util::Rng rng(seed);
  const std::vector<core::Flow> flows = space.sample_unique(num_flows, rng);

  std::printf("bench_evaluator: design=%s (|AND|=%zu) m=%u L=%u flows=%zu "
              "threads=%zu\n",
              design_name.c_str(), design.num_ands(), m, space.length(),
              num_flows, threads);

  // Per-transform pass trajectory (cold vs warm analysis) — before the
  // batch runs so the memo state at measurement time is the same fixed
  // sequence every invocation (see bench_transforms on what "cold" means).
  std::string transforms;
  if (!transforms_json.empty()) {
    std::printf("per-transform pass timings (%s):\n", design_name.c_str());
    transforms = bench_transforms(design, design_name, transform_reps);
    if (std::FILE* f = std::fopen(transforms_json.c_str(), "w")) {
      std::fprintf(f, "%s\n", transforms.c_str());
      std::fclose(f);
    }
  }

  core::EvaluatorConfig naive_cfg;
  naive_cfg.use_prefix_cache = false;
  naive_cfg.dedup_mappings = false;
  naive_cfg.share_analysis = false;

  core::EvaluatorConfig engine_cfg;
  engine_cfg.prefix_cache.byte_budget = budget_mb << 20;

  core::EvaluatorConfig engine_noan_cfg = engine_cfg;
  engine_noan_cfg.share_analysis = false;

  RunResult naive;
  if (!skip_naive) {
    naive = run(design, flows, naive_cfg, threads);
    std::printf("  naive        : %.2fs  %.1f flows/s\n", naive.seconds,
                naive.flows_per_sec);
  }
  RunResult engine_noan;
  if (!skip_naive) {
    engine_noan = run(design, flows, engine_noan_cfg, threads);
    std::printf("  engine (cold): %.2fs  %.1f flows/s\n", engine_noan.seconds,
                engine_noan.flows_per_sec);
  }
  const RunResult engine = run(design, flows, engine_cfg, threads);
  std::printf("  engine (warm): %.2fs  %.1f flows/s\n", engine.seconds,
              engine.flows_per_sec);

  bool identical = true;
  if (!skip_naive) {
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (naive.qor[i].area_um2 != engine.qor[i].area_um2 ||
          naive.qor[i].delay_ps != engine.qor[i].delay_ps ||
          naive.qor[i].num_cells != engine.qor[i].num_cells ||
          naive.qor[i].num_inverters != engine.qor[i].num_inverters ||
          engine_noan.qor[i].area_um2 != engine.qor[i].area_um2 ||
          engine_noan.qor[i].delay_ps != engine.qor[i].delay_ps) {
        identical = false;
        std::printf("  MISMATCH at flow %zu\n", i);
        break;
      }
    }
  }

  const double speedup =
      skip_naive || engine.seconds <= 0 ? 0.0 : naive.seconds / engine.seconds;
  const double analysis_speedup =
      skip_naive || engine.seconds <= 0
          ? 0.0
          : engine_noan.seconds / engine.seconds;
  const auto& st = engine.stats;
  char json[2048];
  std::snprintf(
      json, sizeof json,
      "{\"design\": \"%s\", \"m\": %u, \"flows\": %zu, \"threads\": %zu,\n"
      " \"naive_seconds\": %.3f, \"engine_cold_analysis_seconds\": %.3f,"
      " \"engine_seconds\": %.3f,\n"
      " \"naive_flows_per_sec\": %.2f, \"engine_flows_per_sec\": %.2f,\n"
      " \"speedup\": %.2f, \"analysis_speedup\": %.2f,"
      " \"bit_identical\": %s,\n"
      " \"prefix_hit_rate\": %.4f, \"prefix_entries\": %zu,"
      " \"prefix_bytes\": %zu, \"prefix_evictions\": %zu,\n"
      " \"analysis_bytes\": %zu, \"analysis_evictions\": %zu,\n"
      " \"transforms_applied\": %zu, \"transforms_skipped\": %zu,\n"
      " \"mappings\": %zu, \"mappings_deduped\": %zu}",
      design_name.c_str(), m, num_flows, threads, naive.seconds,
      engine_noan.seconds, engine.seconds, naive.flows_per_sec,
      engine.flows_per_sec, speedup, analysis_speedup,
      skip_naive ? "null" : (identical ? "true" : "false"),
      st.prefix.hit_rate(), st.prefix.entries, st.prefix.bytes,
      st.prefix.evictions, st.prefix.analysis_bytes,
      st.prefix.analysis_evictions, st.transforms_applied,
      st.transforms_skipped, st.mappings, st.mappings_deduped);
  std::printf("%s\n", json);

  const std::string json_path = cli.get("json", "");
  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", json);
      std::fclose(f);
    }
  }

  // Telemetry overhead A/B + per-spec histogram readback
  // (BENCH_telemetry_<design>.json).
  if (!telemetry_json.empty() || overhead_gate >= 0) {
    double overhead = 0.0;
    const std::string report = bench_telemetry(
        design, design_name, flows, engine_cfg, threads, overhead_reps,
        &overhead);
    std::printf("%s\n", report.c_str());
    if (!telemetry_json.empty()) {
      if (std::FILE* f = std::fopen(telemetry_json.c_str(), "w")) {
        std::fprintf(f, "%s\n", report.c_str());
        std::fclose(f);
      }
    }
    if (overhead_gate >= 0 && overhead > overhead_gate) {
      std::fprintf(stderr,
                   "bench_evaluator: telemetry overhead %.2f%% exceeds gate "
                   "%.2f%%\n",
                   overhead, overhead_gate);
      return 1;
    }
  }

  // Extended-registry scenario run (BENCH_registry_<design>.json).
  if (!registry_json.empty()) {
    const std::string registry_report = bench_registry(
        design, design_name, m, num_flows, threads, seed, budget_mb);
    std::printf("%s\n", registry_report.c_str());
    if (std::FILE* f = std::fopen(registry_json.c_str(), "w")) {
      std::fprintf(f, "%s\n", registry_report.c_str());
      std::fclose(f);
    }
  }
  return (!skip_naive && !identical) ? 1 : 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "bench_evaluator: %s\n", e.what());
  return 1;
}
