// google-benchmark microbenchmarks for the NN substrate: per-batch training
// and inference cost of the paper's CNN at several filter counts, and the
// individual layer costs. The paper reports CNN training as only 3-5% of
// total wall-clock; these numbers let a user reproduce that ratio for any
// configuration.

#include <benchmark/benchmark.h>

#include "nn/conv2d.hpp"
#include "nn/locally_connected.hpp"
#include "nn/model.hpp"
#include "nn/pooling.hpp"

namespace {

using namespace flowgen::nn;
using flowgen::util::Rng;

Sequential paper_cnn(std::size_t filters, Rng& rng) {
  Sequential model;
  model.emplace<Conv2D>(1, filters, 6, 12, rng);
  model.emplace<Activation>(ActivationKind::kSELU);
  model.emplace<MaxPool2D>(2, 2, 1);
  model.emplace<Conv2D>(filters, filters, 6, 12, rng);
  model.emplace<Activation>(ActivationKind::kSELU);
  model.emplace<MaxPool2D>(2, 2, 1);
  model.emplace<LocallyConnected2D>(10, 10, filters, 16, 3, 3, rng);
  model.emplace<Activation>(ActivationKind::kSELU);
  model.emplace<Flatten>();
  model.emplace<Dense>(8 * 8 * 16, 48, rng);
  model.emplace<Activation>(ActivationKind::kSELU);
  model.emplace<Dropout>(0.4, rng);
  model.emplace<Dense>(48, 7, rng);
  return model;
}

Tensor random_batch(std::size_t n, Rng& rng) {
  Tensor x({n, 12, 12, 1});
  // One-hot-like sparse batch: two 1s per row block.
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.chance(0.08);
  return x;
}

void BM_CnnTrainBatch(benchmark::State& state) {
  Rng rng(1);
  Sequential model = paper_cnn(static_cast<std::size_t>(state.range(0)), rng);
  RmsProp opt(1e-4);
  const Tensor x = random_batch(5, rng);  // the paper's batch size
  const std::vector<std::uint32_t> labels{0, 1, 2, 3, 6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.train_batch(x, labels, opt));
  }
  state.counters["params"] = static_cast<double>(model.num_parameters());
}
BENCHMARK(BM_CnnTrainBatch)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_CnnPredict(benchmark::State& state) {
  Rng rng(2);
  Sequential model = paper_cnn(16, rng);
  const Tensor x = random_batch(static_cast<std::size_t>(state.range(0)),
                                rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_proba(x));
  }
}
BENCHMARK(BM_CnnPredict)->Arg(1)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_Conv2DForward(benchmark::State& state) {
  Rng rng(3);
  Conv2D conv(1, static_cast<std::size_t>(state.range(0)), 6, 12, rng);
  const Tensor x = random_batch(5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x, false));
  }
}
BENCHMARK(BM_Conv2DForward)->Arg(16)->Arg(64)->Arg(200);

void BM_OptimizerStep(benchmark::State& state) {
  Rng rng(4);
  Tensor w({100000});
  Tensor g({100000});
  for (std::size_t i = 0; i < g.size(); ++i) g[i] = rng.normal();
  RmsProp opt(1e-4);
  for (auto _ : state) {
    opt.step({&w}, {&g});
    benchmark::DoNotOptimize(w[0]);
  }
}
BENCHMARK(BM_OptimizerStep);

}  // namespace
