#pragma once
// Shared scaffolding for the figure-reproduction harnesses: experiment
// scaling (laptop defaults vs --full paper scale), design stand-in mapping,
// and the incremental training loop used by Figures 4-7.
//
// Scaling philosophy (see EXPERIMENTS.md): the paper's absolute sizes
// (50 000 flow samples, 10 000 labeled flows, 100 000-flow pools, 200 conv
// filters, days of wall-clock) are reproduced in *shape* at laptop scale by
// default; every knob can be raised via CLI flags or --full.

#include <cstdio>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "core/evaluator.hpp"
#include "core/flow_space.hpp"
#include "core/labeler.hpp"
#include "core/selection.hpp"
#include "designs/registry.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace flowgen::bench {

/// Paper design -> generator name at the current scale.
inline std::string design_for(const std::string& paper_name,
                              bool full_scale) {
  if (paper_name == "aes") return full_scale ? "aes128" : "aes32";
  if (paper_name == "alu") return full_scale ? "alu64" : "alu16";
  if (paper_name == "mont") return full_scale ? "mont64" : "mont:8";
  return paper_name;
}

struct ExperimentScale {
  std::size_t labeled_flows;    ///< paper: 10 000
  std::size_t pool_flows;       ///< paper: 100 000
  std::size_t initial_labeled;  ///< paper: 1 000
  std::size_t retrain_every;    ///< paper: 500
  std::size_t per_side;         ///< paper: 200 angel + 200 devil
  std::size_t steps_per_round;  ///< paper: ~100 000 total steps
  std::size_t conv_filters;     ///< paper: 200
  std::size_t batch_size = 5;   ///< paper: 5
  double learning_rate = 1e-4;  ///< paper: 1e-4
};

inline ExperimentScale experiment_scale(const util::Cli& cli) {
  ExperimentScale s;
  const bool full = cli.full_scale();
  s.labeled_flows =
      static_cast<std::size_t>(cli.get_int("flows", full ? 10000 : 120));
  s.pool_flows =
      static_cast<std::size_t>(cli.get_int("pool", full ? 100000 : 400));
  s.initial_labeled = static_cast<std::size_t>(
      cli.get_int("initial", full ? 1000 : s.labeled_flows / 3));
  s.retrain_every = static_cast<std::size_t>(
      cli.get_int("retrain", full ? 500 : s.labeled_flows / 3));
  s.per_side =
      static_cast<std::size_t>(cli.get_int("select", full ? 200 : 12));
  s.steps_per_round =
      static_cast<std::size_t>(cli.get_int("steps", full ? 10000 : 200));
  s.conv_filters =
      static_cast<std::size_t>(cli.get_int("filters", full ? 200 : 16));
  s.batch_size = static_cast<std::size_t>(cli.get_int("batch", 5));
  s.learning_rate = cli.get_double("lr", 1e-4);
  return s;
}

/// One point of an accuracy-vs-progress curve (Figures 4-7).
struct CurvePoint {
  std::size_t labeled = 0;
  double elapsed_s = 0.0;
  double accuracy = 0.0;  ///< the paper metric
  double loss = 0.0;
};

/// Reproduces the incremental protocol of Section 3.1 for one (classifier,
/// optimizer) configuration over a pre-labeled dataset, probing the paper
/// accuracy after every (re)training round. The evaluator's cache is shared
/// by all probes, mirroring how the paper amortises dataset collection.
inline std::vector<CurvePoint> run_training_curve(
    const core::SynthesisEvaluator& evaluator,
    const std::vector<core::Flow>& labeled_flows,
    const std::vector<map::QoR>& labeled_qor,
    const std::vector<core::Flow>& pool, const core::LabelerConfig& lcfg,
    const core::ClassifierConfig& ccfg, const std::string& optimizer_name,
    const ExperimentScale& scale, util::ThreadPool& threads,
    util::Rng& rng) {
  const auto t0 = std::chrono::steady_clock::now();
  core::CnnFlowClassifier classifier(ccfg);
  core::Labeler labeler(lcfg);
  auto optimizer = nn::make_optimizer(optimizer_name, scale.learning_rate);

  std::vector<CurvePoint> curve;
  std::size_t labeled = 0;
  while (labeled < labeled_flows.size()) {
    const std::size_t target =
        labeled == 0
            ? std::min(labeled_flows.size(), scale.initial_labeled)
            : std::min(labeled_flows.size(), labeled + scale.retrain_every);
    labeled = target;

    labeler.fit(std::span<const map::QoR>(labeled_qor.data(), labeled));
    const auto labels = labeler.classify_all(
        std::span<const map::QoR>(labeled_qor.data(), labeled));

    double loss_sum = 0.0;
    for (std::size_t step = 0; step < scale.steps_per_round; ++step) {
      std::vector<core::Flow> batch;
      std::vector<std::uint32_t> batch_labels;
      for (std::size_t b = 0; b < scale.batch_size; ++b) {
        const auto pick = static_cast<std::size_t>(rng.below(labeled));
        batch.push_back(labeled_flows[pick]);
        batch_labels.push_back(labels[pick]);
      }
      loss_sum += classifier.train_batch(batch, batch_labels, *optimizer);
    }

    const core::SelectionProbe probe = core::probe_selection_accuracy(
        classifier, labeler, pool, evaluator, scale.per_side, &threads);
    CurvePoint pt;
    pt.labeled = labeled;
    pt.elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    pt.accuracy = probe.accuracy;
    pt.loss = scale.steps_per_round
                  ? loss_sum / static_cast<double>(scale.steps_per_round)
                  : 0.0;
    curve.push_back(pt);
  }
  return curve;
}

inline void print_banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace flowgen::bench
