// Figure 7 reproduction: comparison of the eight activation functions
// (ReLU, ReLU6, ELU, SELU, Softplus, Softsign, Sigmoid, Tanh) for
// generating delay-driven flows on the AES core, with RMSProp and the 6x12
// kernel. The paper finds the saturating nonlinearities (ELU, SELU,
// Softsign, Tanh) ahead, with SELU the most reliable.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace flowgen;
  util::Cli cli(argc, argv);
  const bench::ExperimentScale scale = bench::experiment_scale(cli);
  util::ThreadPool threads(
      static_cast<std::size_t>(cli.get_int("threads", 0)));

  const std::string design = bench::design_for("aes", cli.full_scale());
  bench::print_banner(
      "Fig.7 activation-function study, delay-driven, design aes (" +
      design + ")");

  core::SynthesisEvaluator evaluator(designs::make_design(design));
  core::FlowSpace space(4);
  util::Rng rng(707);
  const auto all =
      space.sample_unique(scale.labeled_flows + scale.pool_flows, rng);
  const std::vector<core::Flow> labeled_flows(
      all.begin(),
      all.begin() + static_cast<std::ptrdiff_t>(scale.labeled_flows));
  const std::vector<core::Flow> pool(
      all.begin() + static_cast<std::ptrdiff_t>(scale.labeled_flows),
      all.end());
  const auto labeled_qor = evaluator.evaluate_many(labeled_flows, &threads);

  core::LabelerConfig lcfg;
  lcfg.objective = core::Objective::kDelay;

  util::CsvWriter csv("fig7_activations.csv", {"activation", "accuracy"});
  std::printf("  %-10s final accuracy (bar chart of Fig. 7)\n",
              "activation");
  for (std::size_t i = 0; i < nn::kNumActivations; ++i) {
    const nn::ActivationKind kind = nn::activation_by_index(i);
    core::ClassifierConfig ccfg;
    ccfg.conv_filters = scale.conv_filters;
    ccfg.kernel_h = 6;
    ccfg.kernel_w = 12;
    ccfg.local_filters = 16;
    ccfg.dense_units = 48;
    ccfg.activation = kind;
    ccfg.seed = 99;
    util::Rng train_rng(4242);
    const auto curve = bench::run_training_curve(
        evaluator, labeled_flows, labeled_qor, pool, lcfg, ccfg, "RMSProp",
        scale, threads, train_rng);
    const double acc = curve.back().accuracy;
    const auto bar = static_cast<std::size_t>(acc * 40.0);
    std::printf("  %-10s %.2f %s\n", nn::activation_name(kind), acc,
                std::string(bar, '#').c_str());
    csv.row({nn::activation_name(kind), std::to_string(acc)});
  }
  std::puts("\n  [paper: ELU/SELU/Softsign/Tanh outperform; SELU most"
            " reliable]\n  series written to fig7_activations.csv");
  return 0;
}
