// Figure 1 reproduction: QoR (delay, area) distributions of random
// 4-repetition ABC-style flows on the AES core and the ALU.
//
// Paper: 50 000 random flows per design, 2-D scatter (a, c) and 3-D
// histogram (b, d); AES delay spread ~= 40%, area spread ~= 90%, and the
// two designs' distributions differ significantly.
//
// Default here: a few hundred flows per design (laptop scale); the same
// scatter + marginal histograms are printed as ASCII plots and dumped to
// CSV. Use --flows N / --full for larger runs.

#include <chrono>

#include "bench_common.hpp"
#include "util/ascii_plot.hpp"

namespace {

using namespace flowgen;

void run_design(const std::string& paper_name, const std::string& design,
                std::size_t num_flows, util::ThreadPool& threads,
                std::uint64_t seed) {
  bench::print_banner("Fig.1 " + paper_name + " (" + design + ", " +
                      std::to_string(num_flows) + " random 4-rep flows)");

  core::SynthesisEvaluator evaluator(designs::make_design(design));
  core::FlowSpace space(4);
  util::Rng rng(seed);
  const auto flows = space.sample_unique(num_flows, rng);

  const auto t0 = std::chrono::steady_clock::now();
  const auto qors = evaluator.evaluate_many(flows, &threads);
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<double> area, delay;
  for (const auto& q : qors) {
    area.push_back(q.area_um2);
    delay.push_back(q.delay_ps);
  }
  const auto sa = util::summarize(area);
  const auto sd = util::summarize(delay);
  std::printf("  baseline (no flow): %s\n",
              evaluator.baseline().to_string().c_str());
  std::printf("  area  [um^2]: min=%.1f max=%.1f spread=%.1f%% mean=%.1f\n",
              sa.min, sa.max, 100.0 * (sa.max - sa.min) / sa.min, sa.mean);
  std::printf("  delay [ps]  : min=%.1f max=%.1f spread=%.1f%% mean=%.1f\n",
              sd.min, sd.max, 100.0 * (sd.max - sd.min) / sd.min, sd.mean);
  std::printf("  synthesis wall-clock: %.1fs (%zu workers)\n", dt,
              threads.size());

  util::Series cloud;
  cloud.name = "flows";
  cloud.glyph = '.';
  cloud.xs = area;
  cloud.ys = delay;
  util::PlotOptions opt;
  opt.title = "  2-D QoR distribution (cf. Fig. 1a/1c)";
  opt.x_label = "area um^2";
  opt.y_label = "delay ps";
  std::fputs(util::scatter_plot(std::vector<util::Series>{cloud}, opt)
                 .c_str(),
             stdout);

  util::PlotOptions hopt;
  hopt.title = "  delay histogram (cf. Fig. 1b/1d marginal)";
  hopt.x_label = "delay ps";
  hopt.width = 48;
  std::fputs(util::histogram_plot(delay, 14, hopt).c_str(), stdout);

  util::CsvWriter csv("fig1_" + paper_name + ".csv",
                      {"area_um2", "delay_ps"});
  for (const auto& q : qors) csv.row({q.area_um2, q.delay_ps});
  std::printf("  series written to fig1_%s.csv\n", paper_name.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::size_t flows = static_cast<std::size_t>(
      cli.get_int("flows", cli.full_scale() ? 50000 : 150));
  util::ThreadPool threads(
      static_cast<std::size_t>(cli.get_int("threads", 0)));

  run_design("aes", bench::design_for("aes", cli.full_scale()), flows,
             threads, 101);
  run_design("alu", bench::design_for("alu", cli.full_scale()), flows,
             threads, 102);

  std::puts("\nShape check vs paper: both designs show a wide QoR spread"
            " from transform ORDER alone, and the two clouds differ;"
            " see EXPERIMENTS.md for the recorded numbers.");
  return 0;
}
