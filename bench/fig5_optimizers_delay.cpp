// Figure 5 reproduction: gradient-descent algorithm comparison for
// generating DELAY-driven angel/devil flows on the Montgomery multiplier,
// AES core and ALU. See fig_optimizers.hpp for the shared harness and
// EXPERIMENTS.md for recorded paper-vs-measured results.

#include "fig_optimizers.hpp"

int main(int argc, char** argv) {
  return flowgen::bench::run_optimizer_figure(
      argc, argv, flowgen::core::Objective::kDelay, "fig5");
}
